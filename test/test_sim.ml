(* Tests for the discrete-event simulation engine (lsr_sim): event ordering,
   processes, synchronization primitives, queueing disciplines, random
   streams and statistics. *)

open Lsr_sim

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Binheap ----------------------------------------------------------------- *)

let test_binheap_basic () =
  let h = Binheap.create ~cmp:Int.compare in
  check_bool "empty" true (Binheap.is_empty h);
  List.iter (Binheap.push h) [ 5; 1; 4; 1; 3 ];
  check_int "length" 5 (Binheap.length h);
  check_int "peek" 1 (Option.get (Binheap.peek h));
  let drained = List.init 5 (fun _ -> Binheap.pop h) in
  Alcotest.(check (list int)) "sorted drain" [ 1; 1; 3; 4; 5 ] drained;
  check_bool "empty again" true (Binheap.is_empty h)

let test_binheap_pop_empty () =
  let h = Binheap.create ~cmp:Int.compare in
  Alcotest.check_raises "pop empty" (Invalid_argument "Binheap.pop: empty heap")
    (fun () -> ignore (Binheap.pop h))

let test_binheap_clear () =
  let h = Binheap.create ~cmp:Int.compare in
  List.iter (Binheap.push h) [ 3; 2; 1 ];
  Binheap.clear h;
  check_bool "cleared" true (Binheap.is_empty h);
  Binheap.push h 9;
  check_int "usable after clear" 9 (Binheap.pop h)

let prop_binheap_sorts =
  QCheck.Test.make ~name:"binheap drains in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Binheap.create ~cmp:Int.compare in
      List.iter (Binheap.push h) xs;
      let drained = List.init (List.length xs) (fun _ -> Binheap.pop h) in
      drained = List.sort Int.compare xs)

(* --- Engine ------------------------------------------------------------------ *)

let test_engine_ordering () =
  let eng = Engine.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Engine.schedule eng ~delay:3. (note "c"));
  ignore (Engine.schedule eng ~delay:1. (note "a"));
  ignore (Engine.schedule eng ~delay:2. (note "b"));
  Engine.run eng;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log);
  check_float "clock at last event" 3. (Engine.now eng)

let test_engine_fifo_ties () =
  let eng = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule eng ~delay:1. (fun () -> log := i :: !log))
  done;
  Engine.run eng;
  Alcotest.(check (list int)) "fifo at equal time" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_engine_cancel () =
  let eng = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule eng ~delay:1. (fun () -> fired := true) in
  Engine.cancel eng h;
  Engine.cancel eng h (* double cancel is a no-op *);
  Engine.run eng;
  check_bool "cancelled event did not fire" false !fired;
  check_int "no pending" 0 (Engine.pending eng)

let test_engine_until () =
  let eng = Engine.create () in
  let fired = ref [] in
  ignore (Engine.schedule eng ~delay:1. (fun () -> fired := 1 :: !fired));
  ignore (Engine.schedule eng ~delay:5. (fun () -> fired := 5 :: !fired));
  Engine.run ~until:2. eng;
  Alcotest.(check (list int)) "only early event" [ 1 ] !fired;
  check_float "clock parked at until" 2. (Engine.now eng);
  check_int "late event still pending" 1 (Engine.pending eng);
  Engine.run eng;
  Alcotest.(check (list int)) "late event fires on resume" [ 5; 1 ] !fired

let test_engine_nested_schedule () =
  let eng = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule eng ~delay:1. (fun () ->
         log := "outer" :: !log;
         ignore (Engine.schedule eng ~delay:1. (fun () -> log := "inner" :: !log))));
  Engine.run eng;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log);
  check_float "final time" 2. (Engine.now eng)

let test_engine_negative_delay () =
  let eng = Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: delay must be finite and non-negative")
    (fun () -> ignore (Engine.schedule eng ~delay:(-1.) (fun () -> ())))

(* engine.mli documents that cancelling an event that already fired is a
   no-op; make the promise executable. *)
let test_engine_cancel_after_fire () =
  let eng = Engine.create () in
  let fired = ref 0 in
  let h = Engine.schedule eng ~delay:1. (fun () -> incr fired) in
  Engine.run eng;
  check_int "fired once" 1 !fired;
  Engine.cancel eng h;
  Engine.cancel eng h;
  check_int "still exactly once" 1 !fired;
  check_int "no pending after late cancel" 0 (Engine.pending eng);
  (* The engine remains fully usable: the stale handle poisoned nothing. *)
  ignore (Engine.schedule eng ~delay:1. (fun () -> incr fired));
  Engine.run eng;
  check_int "subsequent events fire" 2 !fired

(* Cancelling an event parked beyond [until] must keep it from ever firing,
   and resuming the run must not disturb the clock or the queue. *)
let test_engine_until_cancel_interaction () =
  let eng = Engine.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Engine.schedule eng ~delay:1. (note "early"));
  let late = Engine.schedule eng ~delay:5. (note "late") in
  ignore (Engine.schedule eng ~delay:6. (note "later"));
  Engine.run ~until:2. eng;
  check_float "parked at until" 2. (Engine.now eng);
  check_int "two still pending" 2 (Engine.pending eng);
  Engine.cancel eng late;
  check_int "cancel drops the pending count" 1 (Engine.pending eng);
  Engine.run eng;
  Alcotest.(check (list string))
    "cancelled event never fires" [ "early"; "later" ] (List.rev !log);
  check_float "clock at the surviving event" 6. (Engine.now eng)

(* [run ~until] with nothing left but cancelled events must not advance the
   clock past [until], and an event at exactly [until] fires. *)
let test_engine_until_exact_boundary () =
  let eng = Engine.create () in
  let fired = ref false in
  ignore (Engine.schedule eng ~delay:3. (fun () -> fired := true));
  let ghost = Engine.schedule eng ~delay:4. (fun () -> assert false) in
  Engine.cancel eng ghost;
  Engine.run ~until:3. eng;
  check_bool "event at exactly until fires" true !fired;
  check_float "clock is exactly until" 3. (Engine.now eng);
  Engine.run eng;
  check_float "cancelled remnants do not advance the clock" 3. (Engine.now eng)

(* FIFO tie-breaking survives interleaved cancellation and an until-pause:
   same-instant events fire in scheduling order, with cancelled ones
   excised. *)
let test_engine_fifo_ties_with_cancel_and_until () =
  let eng = Engine.create () in
  let log = ref [] in
  let handles =
    List.map
      (fun i -> (i, Engine.schedule eng ~delay:2. (fun () -> log := i :: !log)))
      [ 0; 1; 2; 3; 4 ]
  in
  Engine.cancel eng (List.assoc 1 handles);
  Engine.cancel eng (List.assoc 3 handles);
  (* Pausing before the instant must not perturb the tie order. *)
  Engine.run ~until:1. eng;
  check_int "all survivors still pending" 3 (Engine.pending eng);
  Engine.run eng;
  Alcotest.(check (list int))
    "survivors fire in scheduling order" [ 0; 2; 4 ] (List.rev !log)

(* --- Process ------------------------------------------------------------------ *)

let test_process_delay () =
  let eng = Engine.create () in
  let times = ref [] in
  Process.spawn eng (fun () ->
      Process.delay 1.;
      times := Process.now () :: !times;
      Process.delay 2.;
      times := Process.now () :: !times);
  Engine.run eng;
  Alcotest.(check (list (float 1e-9))) "delays accumulate" [ 1.; 3. ]
    (List.rev !times)

let test_process_spawn_at () =
  let eng = Engine.create () in
  let t = ref 0. in
  Process.spawn_at eng ~delay:5. (fun () -> t := Process.now ());
  Engine.run eng;
  check_float "spawn_at start time" 5. !t

let test_process_suspend_waker () =
  let eng = Engine.create () in
  let waker = ref None in
  let result = ref 0 in
  Process.spawn eng (fun () ->
      let v = Process.suspend (fun w -> waker := Some w) in
      result := v);
  (* Wake it from a second process at t=2. *)
  Process.spawn eng (fun () ->
      Process.delay 2.;
      (Option.get !waker) 42;
      (* Double wake must be ignored. *)
      (Option.get !waker) 99);
  Engine.run eng;
  check_int "suspend returns woken value once" 42 !result

let test_process_engine_outside () =
  Alcotest.check_raises "engine() outside process"
    (Failure "Process.engine: not inside a process") (fun () ->
      ignore (Process.engine ()))

let test_process_spawn_within_process () =
  let eng = Engine.create () in
  let log = ref [] in
  Process.spawn eng (fun () ->
      log := "parent" :: !log;
      Process.spawn eng (fun () ->
          Process.delay 1.;
          log := "child" :: !log);
      Process.delay 2.;
      log := "parent-done" :: !log);
  Engine.run eng;
  Alcotest.(check (list string)) "child interleaves"
    [ "parent"; "child"; "parent-done" ]
    (List.rev !log)

let test_engine_pending_counter () =
  let eng = Engine.create () in
  let a = Engine.schedule eng ~delay:1. (fun () -> ()) in
  ignore (Engine.schedule eng ~delay:2. (fun () -> ()));
  check_int "two pending" 2 (Engine.pending eng);
  Engine.cancel eng a;
  check_int "one after cancel" 1 (Engine.pending eng);
  Engine.run eng;
  check_int "none after run" 0 (Engine.pending eng)

(* --- Condition ----------------------------------------------------------------- *)

let test_condition_await_signal () =
  let eng = Engine.create () in
  let cond = Condition.create () in
  let flag = ref false in
  let resumed_at = ref 0. in
  Process.spawn eng (fun () ->
      Condition.await cond (fun () -> !flag);
      resumed_at := Process.now ());
  Process.spawn eng (fun () ->
      Process.delay 1.;
      Condition.signal cond (* predicate still false: no wake *);
      Process.delay 1.;
      flag := true;
      Condition.signal cond);
  Engine.run eng;
  check_float "woke when predicate held" 2. !resumed_at

let test_condition_immediate () =
  let eng = Engine.create () in
  let cond = Condition.create () in
  let ran = ref false in
  Process.spawn eng (fun () ->
      Condition.await cond (fun () -> true);
      ran := true);
  Engine.run eng;
  check_bool "true predicate returns immediately" true !ran

let test_condition_distinct_predicates () =
  let eng = Engine.create () in
  let cond = Condition.create () in
  let level = ref 0 in
  let woken = ref [] in
  List.iter
    (fun threshold ->
      Process.spawn eng (fun () ->
          Condition.await cond (fun () -> !level >= threshold);
          woken := threshold :: !woken))
    [ 3; 1; 2 ];
  Process.spawn eng (fun () ->
      Process.delay 1.;
      level := 1;
      Condition.signal cond;
      Process.delay 1.;
      level := 3;
      Condition.signal cond);
  Engine.run eng;
  Alcotest.(check (list int)) "woken as thresholds pass" [ 1; 3; 2 ]
    (List.rev !woken)

let test_condition_waiting_count () =
  let eng = Engine.create () in
  let cond = Condition.create () in
  let release = ref false in
  for _ = 1 to 3 do
    Process.spawn eng (fun () -> Condition.await cond (fun () -> !release))
  done;
  Process.spawn eng (fun () ->
      Process.delay 1.;
      check_int "three waiters" 3 (Condition.waiting cond);
      release := true;
      Condition.signal cond);
  Engine.run eng;
  check_int "all released" 0 (Condition.waiting cond)

(* --- Seqcond ------------------------------------------------------------------- *)

let test_seqcond_threshold_order () =
  let eng = Engine.create () in
  let sc = Seqcond.create () in
  let woken = ref [] in
  List.iter
    (fun threshold ->
      Process.spawn eng (fun () ->
          Seqcond.await sc ~threshold:(fun () -> threshold);
          woken := threshold :: !woken))
    [ 3; 1; 2 ];
  Process.spawn eng (fun () ->
      Process.delay 1.;
      Seqcond.advance sc 1;
      Process.delay 1.;
      check_int "only the satisfied waiter woke" 2 (Seqcond.waiting sc);
      Seqcond.advance sc 3);
  Engine.run eng;
  Alcotest.(check (list int))
    "woken as thresholds pass, lowest first" [ 1; 2; 3 ] (List.rev !woken);
  check_int "all released" 0 (Seqcond.waiting sc);
  check_int "level sticks at the high-water mark" 3 (Seqcond.level sc)

let test_seqcond_rising_threshold () =
  (* A pooled session's required seq can rise while one of its reads is
     already blocked: the waiter must re-check after waking and go back to
     sleep until the new threshold is reached. *)
  let eng = Engine.create () in
  let sc = Seqcond.create () in
  let need = ref 2 in
  let resumed_at = ref 0. in
  Process.spawn eng (fun () ->
      Seqcond.await sc ~threshold:(fun () -> !need);
      resumed_at := Process.now ());
  Process.spawn eng (fun () ->
      Process.delay 1.;
      need := 5 (* rises before the old threshold is reached *);
      Seqcond.advance sc 2;
      Process.delay 1.;
      Seqcond.advance sc 5);
  Engine.run eng;
  check_float "resumed only once the risen threshold passed" 2. !resumed_at

let test_seqcond_immediate () =
  let eng = Engine.create () in
  let sc = Seqcond.create () in
  Seqcond.advance sc 7;
  let ran = ref false in
  Process.spawn eng (fun () ->
      Seqcond.await sc ~threshold:(fun () -> 7);
      ran := true);
  Engine.run eng;
  check_bool "threshold already reached returns immediately" true !ran

(* --- Mailbox ------------------------------------------------------------------- *)

let test_mailbox_fifo () =
  let eng = Engine.create () in
  let mb = Mailbox.create () in
  let received = ref [] in
  Mailbox.send mb 1;
  Mailbox.send mb 2;
  Mailbox.send mb 3;
  Process.spawn eng (fun () ->
      for _ = 1 to 3 do
        received := Mailbox.recv mb :: !received
      done);
  Engine.run eng;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !received)

let test_mailbox_blocking_recv () =
  let eng = Engine.create () in
  let mb = Mailbox.create () in
  let got_at = ref 0. in
  Process.spawn eng (fun () ->
      ignore (Mailbox.recv mb);
      got_at := Process.now ());
  Process.spawn eng (fun () ->
      Process.delay 3.;
      Mailbox.send mb "hello");
  Engine.run eng;
  check_float "recv blocked until send" 3. !got_at

let test_mailbox_peek_length () =
  let mb = Mailbox.create () in
  check_bool "empty" true (Mailbox.is_empty mb);
  Mailbox.send mb 7;
  Mailbox.send mb 8;
  check_int "length" 2 (Mailbox.length mb);
  check_int "peek is oldest" 7 (Option.get (Mailbox.peek mb))

(* Depth telemetry on a hand-computable schedule: two messages queued at
   t=0, drained at t=1 and t=3. *)
let test_mailbox_telemetry () =
  let eng = Engine.create () in
  let mb = Mailbox.create ~clock:(fun () -> Engine.now eng) () in
  Process.spawn eng (fun () ->
      Mailbox.send mb "a";
      Mailbox.send mb "b");
  Process.spawn_at eng ~delay:1. (fun () -> ignore (Mailbox.recv mb));
  Process.spawn_at eng ~delay:3. (fun () -> ignore (Mailbox.recv mb));
  Engine.run eng;
  check_int "sends" 2 (Mailbox.sends mb);
  check_int "recvs" 2 (Mailbox.recvs mb);
  check_int "peak depth" 2 (Mailbox.peak_depth mb);
  (* depth 2 over [0,1), depth 1 over [1,3): integral 4 over 3 seconds. *)
  check_float "depth area" 4. (Mailbox.depth_area mb);
  check_float "mean depth" (4. /. 3.) (Mailbox.mean_depth mb)

(* A direct hand-off to a parked receiver never enqueues: the depth integral
   stays zero while the send/recv counters still move. *)
let test_mailbox_handoff_telemetry () =
  let eng = Engine.create () in
  let mb = Mailbox.create ~clock:(fun () -> Engine.now eng) () in
  let got = ref None in
  Process.spawn eng (fun () -> got := Some (Mailbox.recv mb));
  Process.spawn_at eng ~delay:1. (fun () -> Mailbox.send mb 7);
  Engine.run eng;
  Alcotest.(check (option int)) "delivered" (Some 7) !got;
  check_int "sends" 1 (Mailbox.sends mb);
  check_int "recvs" 1 (Mailbox.recvs mb);
  check_int "peak depth" 0 (Mailbox.peak_depth mb);
  check_float "depth area" 0. (Mailbox.depth_area mb)

(* --- Resource ------------------------------------------------------------------- *)

let test_resource_fifo () =
  let eng = Engine.create () in
  let res = Resource.create eng ~discipline:Resource.Fifo in
  let finish = Hashtbl.create 4 in
  let job name amount =
    Process.spawn eng (fun () ->
        Resource.use res amount;
        Hashtbl.replace finish name (Process.now ()))
  in
  job "a" 2.;
  job "b" 1.;
  Engine.run eng;
  (* Fifo: a served 0-2, b served 2-3. *)
  check_float "a completes" 2. (Hashtbl.find finish "a");
  check_float "b queues behind a" 3. (Hashtbl.find finish "b");
  check_float "busy time" 3. (Resource.busy_time res)

let test_resource_zero_amount_queues () =
  (* A zero-cost job must not jump the queue: it goes through the discipline
     and completes in its arrival-order turn, behind work already in line
     (the old short-circuit returned immediately, breaking FIFO). *)
  let eng = Engine.create () in
  let res = Resource.create eng ~discipline:Resource.Fifo in
  let order = ref [] in
  let finish = Hashtbl.create 4 in
  let job name amount =
    Process.spawn eng (fun () ->
        Resource.use res amount;
        order := name :: !order;
        Hashtbl.replace finish name (Process.now ()))
  in
  job "slow" 2.;
  job "free1" 0.;
  job "mid" 1.;
  job "free2" 0.;
  Engine.run eng;
  Alcotest.(check (list string))
    "service strictly in arrival order"
    [ "slow"; "free1"; "mid"; "free2" ]
    (List.rev !order);
  check_float "zero job waits behind predecessor" 2.
    (Hashtbl.find finish "free1");
  check_float "second zero job waits for all prior work" 3.
    (Hashtbl.find finish "free2")

let test_resource_zero_amount_round_robin () =
  (* Under round robin a zero-cost arrival still waits for the slice in
     progress instead of completing at once. *)
  let eng = Engine.create () in
  let res = Resource.create eng ~discipline:(Resource.Round_robin 0.5) in
  let finish = Hashtbl.create 4 in
  let job name amount =
    Process.spawn eng (fun () ->
        Resource.use res amount;
        Hashtbl.replace finish name (Process.now ()))
  in
  job "slow" 2.;
  job "free" 0.;
  Engine.run eng;
  check_float "zero job completes after the head's first slice" 0.5
    (Hashtbl.find finish "free");
  check_float "slow job unaffected" 2. (Hashtbl.find finish "slow")

let test_resource_ps_equal_share () =
  let eng = Engine.create () in
  let res = Resource.create eng ~discipline:Resource.Processor_sharing in
  let finish = Hashtbl.create 4 in
  let job name amount =
    Process.spawn eng (fun () ->
        Resource.use res amount;
        Hashtbl.replace finish name (Process.now ()))
  in
  job "a" 1.;
  job "b" 1.;
  Engine.run eng;
  (* Both share the server, so both finish at t=2. *)
  check_float "a shares" 2. (Hashtbl.find finish "a");
  check_float "b shares" 2. (Hashtbl.find finish "b")

let test_resource_ps_late_arrival () =
  let eng = Engine.create () in
  let res = Resource.create eng ~discipline:Resource.Processor_sharing in
  let finish = Hashtbl.create 4 in
  Process.spawn eng (fun () ->
      Resource.use res 2.;
      Hashtbl.replace finish "first" (Process.now ()));
  Process.spawn_at eng ~delay:1. (fun () ->
      Resource.use res 0.5;
      Hashtbl.replace finish "late" (Process.now ()));
  Engine.run eng;
  (* First runs alone 0-1 (1 unit done), then shares: late needs 0.5 at rate
     1/2 -> done at t=2; first finishes its remaining 0.5 alone by 2.5. *)
  check_float "late job" 2. (Hashtbl.find finish "late");
  check_float "first job" 2.5 (Hashtbl.find finish "first")

let test_resource_round_robin () =
  let eng = Engine.create () in
  let res = Resource.create eng ~discipline:(Resource.Round_robin 0.1) in
  let finish = Hashtbl.create 4 in
  let job name amount =
    Process.spawn eng (fun () ->
        Resource.use res amount;
        Hashtbl.replace finish name (Process.now ()))
  in
  job "a" 0.5;
  job "b" 0.5;
  Engine.run eng;
  (* Alternating 0.1 slices: a finishes at 0.9, b at 1.0. *)
  check_float "a alternates" 0.9 (Hashtbl.find finish "a");
  check_float "b alternates" 1.0 (Hashtbl.find finish "b")

let test_resource_rr_approximates_ps () =
  (* With a slice much smaller than jobs, round robin and processor sharing
     agree — the modelling substitution used by the experiments. *)
  let run discipline =
    let eng = Engine.create () in
    let res = Resource.create eng ~discipline in
    let finish = ref [] in
    for i = 1 to 4 do
      Process.spawn_at eng
        ~delay:(0.3 *. float_of_int i)
        (fun () ->
          Resource.use res 1.;
          finish := (i, Process.now ()) :: !finish)
    done;
    Engine.run eng;
    List.sort compare !finish
  in
  let rr = run (Resource.Round_robin 0.001) in
  let ps = run Resource.Processor_sharing in
  List.iter2
    (fun (i, t_rr) (_, t_ps) ->
      Alcotest.(check (float 0.01))
        (Printf.sprintf "job %d same completion" i)
        t_ps t_rr)
    rr ps

let test_resource_zero_amount () =
  let eng = Engine.create () in
  let res = Resource.create eng ~discipline:Resource.Fifo in
  let ran = ref false in
  Process.spawn eng (fun () ->
      Resource.use res 0.;
      ran := true);
  Engine.run eng;
  check_bool "zero service returns immediately" true !ran

let test_resource_load () =
  let eng = Engine.create () in
  let res = Resource.create eng ~discipline:Resource.Processor_sharing in
  Process.spawn eng (fun () -> Resource.use res 2.);
  Process.spawn eng (fun () -> Resource.use res 2.);
  Process.spawn_at eng ~delay:1. (fun () ->
      check_int "two jobs in service" 2 (Resource.load res));
  Engine.run eng;
  check_int "drained" 0 (Resource.load res)

let test_resource_bad_quantum () =
  let eng = Engine.create () in
  Alcotest.check_raises "bad quantum"
    (Invalid_argument "Resource.create: round-robin quantum must be positive")
    (fun () ->
      ignore (Resource.create eng ~discipline:(Resource.Round_robin 0.)))

(* Busy time is charged lazily, so utilization sampled mid-service is exact
   — not stale until the next completion event. *)
let test_resource_busy_midservice_fifo () =
  let eng = Engine.create () in
  let res = Resource.create eng ~discipline:Resource.Fifo in
  Process.spawn eng (fun () -> Resource.use res 2.);
  Process.spawn_at eng ~delay:1. (fun () ->
      check_float "busy mid-service" 1. (Resource.busy_time res);
      check_float "utilization mid-service" 1. (Resource.utilization res));
  Engine.run eng;
  check_float "busy at end" 2. (Resource.busy_time res)

let test_resource_busy_midslice_rr () =
  let eng = Engine.create () in
  let res = Resource.create eng ~discipline:(Resource.Round_robin 0.5) in
  Process.spawn eng (fun () -> Resource.use res 2.);
  Process.spawn_at eng ~delay:0.25 (fun () ->
      check_float "busy mid-slice" 0.25 (Resource.busy_time res));
  Engine.run eng;
  check_float "busy at end" 2. (Resource.busy_time res)

(* A sampler firing at the same instant as (but before) PS completion events
   must not count the finished-but-unfired jobs. *)
let test_resource_ps_load_no_overshoot () =
  let eng = Engine.create () in
  let res = Resource.create eng ~discipline:Resource.Processor_sharing in
  (* Scheduled first, so FIFO tie-breaking fires it before the completions
     due at the same instant. *)
  Process.spawn_at eng ~delay:2. (fun () ->
      check_int "no finished-but-unfired jobs counted" 0 (Resource.load res));
  Process.spawn eng (fun () -> Resource.use res 1.);
  Process.spawn eng (fun () -> Resource.use res 1.);
  Engine.run eng;
  check_int "drained" 0 (Resource.load res)

(* Exact telemetry on a hand-computable FIFO scenario: two unit jobs arriving
   together at t=0, so one waits exactly the other's service time. *)
let test_resource_telemetry_counts () =
  let eng = Engine.create () in
  let res = Resource.create ~name:"srv" eng ~discipline:Resource.Fifo in
  Process.spawn eng (fun () -> Resource.use res 1.);
  Process.spawn eng (fun () -> Resource.use res 1.);
  Engine.run eng;
  Alcotest.(check string) "name" "srv" (Resource.name res);
  check_int "arrivals" 2 (Resource.arrivals res);
  check_int "completions" 2 (Resource.completions res);
  check_float "service total" 2. (Stat.total (Resource.service_stat res));
  check_float "wait mean" 0.5 (Stat.mean (Resource.wait_stat res));
  (* 2 jobs over [0,1), 1 job over [1,2): integral 3 over 2 seconds. *)
  check_float "queue area" 3. (Resource.queue_area res);
  check_float "mean queue length" 1.5 (Resource.mean_queue_length res);
  check_float "throughput" 1. (Resource.throughput res);
  check_float "utilization" 1. (Resource.utilization res);
  match Resource.littles_law_gap res with
  | None -> Alcotest.fail "expected a Little's-law gap"
  | Some gap -> check_float "littles gap exact" 0. gap

(* Little's law L = λ·W as a pathwise invariant: over a long run the
   time-average population, the completion rate and the mean sojourn agree
   up to edge effects (jobs in flight at the horizon), whatever the
   discipline. *)
let prop_resource_littles_law =
  let disciplines =
    [
      ("fifo", Resource.Fifo);
      ("rr", Resource.Round_robin 0.05);
      ("ps", Resource.Processor_sharing);
    ]
  in
  QCheck.Test.make ~name:"Little's law holds under Poisson arrivals" ~count:20
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      List.for_all
        (fun (_, discipline) ->
          let eng = Engine.create () in
          let res = Resource.create eng ~discipline in
          let rng = Rng.create seed in
          Process.spawn eng (fun () ->
              let rec arrive () =
                Process.delay (Rng.exponential rng ~mean:1.0);
                let amount = Rng.exponential rng ~mean:0.4 in
                Process.spawn eng (fun () -> Resource.use res amount);
                arrive ()
              in
              arrive ());
          Engine.run ~until:1000. eng;
          match Resource.littles_law_gap res with
          | None -> false
          | Some gap -> gap < 0.1)
        disciplines)

(* Work conservation: whatever the discipline and arrival pattern, every job
   completes, total delivered service equals total demand, and no job
   finishes before [arrival + amount]. *)
let prop_resource_work_conservation =
  let job_gen =
    QCheck.Gen.(
      list_size (int_range 1 15)
        (pair (float_bound_inclusive 10.) (float_bound_exclusive 5.)))
  in
  let disciplines =
    [
      ("fifo", Resource.Fifo);
      ("rr", Resource.Round_robin 0.05);
      ("ps", Resource.Processor_sharing);
    ]
  in
  QCheck.Test.make ~name:"resource disciplines conserve work" ~count:150
    (QCheck.make job_gen) (fun jobs ->
      (* amounts must be strictly positive *)
      let jobs = List.map (fun (a, d) -> (a, d +. 0.01)) jobs in
      List.for_all
        (fun (_, discipline) ->
          let eng = Engine.create () in
          let res = Resource.create eng ~discipline in
          let completions = ref [] in
          List.iter
            (fun (arrival, amount) ->
              Process.spawn_at eng ~delay:arrival (fun () ->
                  Resource.use res amount;
                  completions := (arrival, amount, Process.now ()) :: !completions))
            jobs;
          Engine.run eng;
          List.length !completions = List.length jobs
          && List.for_all
               (fun (arrival, amount, finish) ->
                 finish >= arrival +. amount -. 1e-6)
               !completions
          &&
          let total = List.fold_left (fun acc (_, a) -> acc +. a) 0. jobs in
          Float.abs (Resource.busy_time res -. total) < 1e-3)
        disciplines)

(* --- Rng ----------------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same seed, same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create 42 in
  let b = Rng.split a in
  let xs = List.init 50 (fun _ -> Rng.bits64 a) in
  let ys = List.init 50 (fun _ -> Rng.bits64 b) in
  check_bool "streams differ" true (xs <> ys)

let test_rng_uniform_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.uniform rng ~lo:5 ~hi:15 in
    check_bool "within bounds" true (x >= 5 && x <= 15)
  done

let test_rng_uniform_bad_range () =
  let rng = Rng.create 7 in
  Alcotest.check_raises "lo > hi" (Invalid_argument "Rng.uniform: lo > hi")
    (fun () -> ignore (Rng.uniform rng ~lo:2 ~hi:1))

let test_rng_exponential_mean () =
  let rng = Rng.create 11 in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng ~mean:7.
  done;
  let mean = !sum /. float_of_int n in
  check_bool "sample mean near 7"
    true
    (Float.abs (mean -. 7.) < 0.25)

let test_rng_exponential_bad_mean () =
  let rng = Rng.create 11 in
  Alcotest.check_raises "non-positive mean"
    (Invalid_argument "Rng.exponential: mean must be positive") (fun () ->
      ignore (Rng.exponential rng ~mean:0.))

let test_rng_bernoulli_frequency () =
  let rng = Rng.create 13 in
  let n = 20_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bernoulli rng ~p:0.2 then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int n in
  check_bool "frequency near 0.2" true (Float.abs (freq -. 0.2) < 0.02)

let test_rng_zipf_range_and_skew () =
  let rng = Rng.create 23 in
  let n = 1000 in
  let draws s = List.init 5000 (fun _ -> Rng.zipf rng ~n ~s) in
  let head_freq xs =
    float_of_int (List.length (List.filter (fun x -> x <= 10) xs))
    /. float_of_int (List.length xs)
  in
  let flat = draws 0. in
  check_bool "all in range" true (List.for_all (fun x -> x >= 1 && x <= n) flat);
  let f0 = head_freq flat in
  let f09 = head_freq (draws 0.9) in
  let f14 = head_freq (draws 1.4) in
  check_bool "uniform hits head ~1%" true (f0 < 0.03);
  check_bool "skew concentrates on head" true (f09 > 5. *. f0);
  check_bool "more skew, more concentration" true (f14 > f09)

let test_rng_zipf_invalid () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "n < 1" (Invalid_argument "Rng.zipf: n < 1") (fun () ->
      ignore (Rng.zipf rng ~n:0 ~s:1.));
  Alcotest.check_raises "s < 0" (Invalid_argument "Rng.zipf: s < 0") (fun () ->
      ignore (Rng.zipf rng ~n:5 ~s:(-1.)))

let test_rng_float_range () =
  let rng = Rng.create 17 in
  for _ = 1 to 1000 do
    let x = Rng.float rng in
    check_bool "in [0,1)" true (x >= 0. && x < 1.)
  done

(* --- Stat ---------------------------------------------------------------------- *)

let test_stat_basic () =
  let s = Stat.create () in
  List.iter (Stat.record s) [ 1.; 2.; 3.; 4. ];
  check_int "count" 4 (Stat.count s);
  check_float "mean" 2.5 (Stat.mean s);
  Alcotest.(check (float 1e-9)) "variance" (5. /. 3.) (Stat.variance s);
  Alcotest.(check (option (float 0.))) "min" (Some 1.) (Stat.min s);
  Alcotest.(check (option (float 0.))) "max" (Some 4.) (Stat.max s);
  check_float "total" 10. (Stat.total s)

let test_stat_empty () =
  let s = Stat.create () in
  check_float "empty mean" 0. (Stat.mean s);
  check_float "empty variance" 0. (Stat.variance s);
  Alcotest.(check (option (float 0.))) "empty min" None (Stat.min s);
  Alcotest.(check (option (float 0.))) "empty max" None (Stat.max s)

let test_stat_merge () =
  let a = Stat.create () and b = Stat.create () and all = Stat.create () in
  List.iter
    (fun x ->
      Stat.record all x;
      if x < 3. then Stat.record a x else Stat.record b x)
    [ 1.; 2.; 3.; 4.; 5. ];
  let merged = Stat.merge a b in
  check_int "merged count" (Stat.count all) (Stat.count merged);
  Alcotest.(check (float 1e-9)) "merged mean" (Stat.mean all) (Stat.mean merged);
  Alcotest.(check (float 1e-9)) "merged variance" (Stat.variance all)
    (Stat.variance merged)

let test_stat_merge_empty () =
  let a = Stat.create () and b = Stat.create () in
  Stat.record b 5.;
  let m = Stat.merge a b in
  check_int "merge with empty" 1 (Stat.count m);
  check_float "mean preserved" 5. (Stat.mean m);
  Alcotest.(check (option (float 0.))) "min not polluted" (Some 5.) (Stat.min m);
  Alcotest.(check (option (float 0.))) "max not polluted" (Some 5.) (Stat.max m);
  let both_empty = Stat.merge (Stat.create ()) (Stat.create ()) in
  Alcotest.(check (option (float 0.)))
    "empty merge min" None (Stat.min both_empty);
  Alcotest.(check (option (float 0.)))
    "empty merge max" None (Stat.max both_empty)

let test_stat_clear () =
  let s = Stat.create () in
  Stat.record s 9.;
  Stat.clear s;
  check_int "cleared" 0 (Stat.count s)

let prop_stat_mean_matches_naive =
  QCheck.Test.make ~name:"Welford mean matches naive mean" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let s = Stat.create () in
      List.iter (Stat.record s) xs;
      let naive = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs) in
      Float.abs (Stat.mean s -. naive) < 1e-6 *. (1. +. Float.abs naive))

(* Budgeted-ops guard (PR 6): the event heap must stay O(log n) per
   operation under a large randomized load, including interleaved
   cancellations. 200k events is bench-scale; the 10s budget is generous
   enough to never flake while catching any O(n) sift or compaction
   regression. *)
let test_engine_heap_budget () =
  let eng = Engine.create () in
  let rng = Rng.create 0xBEEF in
  let fired = ref 0 in
  let handles =
    Array.init 200_000 (fun _ ->
        Engine.schedule eng
          ~delay:(1000. *. Rng.float rng)
          (fun () -> incr fired))
  in
  (* Cancel a scattered 10% so removal paths are exercised too. *)
  let cancelled = ref 0 in
  Array.iteri
    (fun i h ->
      if i mod 10 = 3 then begin
        Engine.cancel eng h;
        incr cancelled
      end)
    handles;
  let t0 = Sys.time () in
  Engine.run eng;
  let elapsed = Sys.time () -. t0 in
  check_int "every surviving event fired" (200_000 - !cancelled) !fired;
  check_int "events_processed counts firings"
    (200_000 - !cancelled)
    (Engine.events_processed eng);
  check_bool
    (Printf.sprintf "200k-event heap drained in %.2fs cpu (budget 10s)" elapsed)
    true (elapsed < 10.)

(* --- Suite ----------------------------------------------------------------------- *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "lsr_sim"
    [
      ( "binheap",
        [
          Alcotest.test_case "push/pop sorted" `Quick test_binheap_basic;
          Alcotest.test_case "pop empty raises" `Quick test_binheap_pop_empty;
          Alcotest.test_case "clear" `Quick test_binheap_clear;
        ]
        @ qsuite [ prop_binheap_sorts ] );
      ( "engine",
        [
          Alcotest.test_case "time ordering" `Quick test_engine_ordering;
          Alcotest.test_case "fifo tie-break" `Quick test_engine_fifo_ties;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "run until" `Quick test_engine_until;
          Alcotest.test_case "nested schedule" `Quick test_engine_nested_schedule;
          Alcotest.test_case "negative delay" `Quick test_engine_negative_delay;
          Alcotest.test_case "cancel after fire is a no-op" `Quick
            test_engine_cancel_after_fire;
          Alcotest.test_case "until + cancel interaction" `Quick
            test_engine_until_cancel_interaction;
          Alcotest.test_case "until exact boundary" `Quick
            test_engine_until_exact_boundary;
          Alcotest.test_case "fifo ties with cancel and until" `Quick
            test_engine_fifo_ties_with_cancel_and_until;
          Alcotest.test_case "200k-event heap budget" `Slow
            test_engine_heap_budget;
        ] );
      ( "process",
        [
          Alcotest.test_case "delay" `Quick test_process_delay;
          Alcotest.test_case "spawn_at" `Quick test_process_spawn_at;
          Alcotest.test_case "suspend/waker once" `Quick test_process_suspend_waker;
          Alcotest.test_case "engine() outside" `Quick test_process_engine_outside;
          Alcotest.test_case "spawn within process" `Quick
            test_process_spawn_within_process;
          Alcotest.test_case "pending counter" `Quick test_engine_pending_counter;
        ] );
      ( "condition",
        [
          Alcotest.test_case "await/signal" `Quick test_condition_await_signal;
          Alcotest.test_case "immediate pass" `Quick test_condition_immediate;
          Alcotest.test_case "waiting count" `Quick test_condition_waiting_count;
          Alcotest.test_case "distinct predicates" `Quick
            test_condition_distinct_predicates;
        ] );
      ( "seqcond",
        [
          Alcotest.test_case "threshold order" `Quick test_seqcond_threshold_order;
          Alcotest.test_case "rising threshold" `Quick
            test_seqcond_rising_threshold;
          Alcotest.test_case "immediate pass" `Quick test_seqcond_immediate;
        ] );
      ( "mailbox",
        [
          Alcotest.test_case "fifo order" `Quick test_mailbox_fifo;
          Alcotest.test_case "blocking recv" `Quick test_mailbox_blocking_recv;
          Alcotest.test_case "peek/length" `Quick test_mailbox_peek_length;
          Alcotest.test_case "depth telemetry" `Quick test_mailbox_telemetry;
          Alcotest.test_case "hand-off telemetry" `Quick
            test_mailbox_handoff_telemetry;
        ] );
      ( "resource",
        [
          Alcotest.test_case "fifo discipline" `Quick test_resource_fifo;
          Alcotest.test_case "zero amount queues (fifo)" `Quick
            test_resource_zero_amount_queues;
          Alcotest.test_case "zero amount queues (rr)" `Quick
            test_resource_zero_amount_round_robin;
          Alcotest.test_case "ps equal share" `Quick test_resource_ps_equal_share;
          Alcotest.test_case "ps late arrival" `Quick test_resource_ps_late_arrival;
          Alcotest.test_case "round robin slices" `Quick test_resource_round_robin;
          Alcotest.test_case "rr approximates ps" `Quick
            test_resource_rr_approximates_ps;
          Alcotest.test_case "zero amount" `Quick test_resource_zero_amount;
          Alcotest.test_case "load" `Quick test_resource_load;
          Alcotest.test_case "bad quantum" `Quick test_resource_bad_quantum;
          Alcotest.test_case "busy time mid-service (fifo)" `Quick
            test_resource_busy_midservice_fifo;
          Alcotest.test_case "busy time mid-slice (rr)" `Quick
            test_resource_busy_midslice_rr;
          Alcotest.test_case "ps load no overshoot" `Quick
            test_resource_ps_load_no_overshoot;
          Alcotest.test_case "telemetry counts" `Quick
            test_resource_telemetry_counts;
        ]
        @ qsuite [ prop_resource_work_conservation; prop_resource_littles_law ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "uniform bounds" `Quick test_rng_uniform_bounds;
          Alcotest.test_case "uniform bad range" `Quick test_rng_uniform_bad_range;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "exponential bad mean" `Quick
            test_rng_exponential_bad_mean;
          Alcotest.test_case "bernoulli frequency" `Quick
            test_rng_bernoulli_frequency;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "zipf range/skew" `Quick test_rng_zipf_range_and_skew;
          Alcotest.test_case "zipf invalid" `Quick test_rng_zipf_invalid;
        ] );
      ( "stat",
        [
          Alcotest.test_case "basic moments" `Quick test_stat_basic;
          Alcotest.test_case "empty" `Quick test_stat_empty;
          Alcotest.test_case "merge" `Quick test_stat_merge;
          Alcotest.test_case "merge with empty" `Quick test_stat_merge_empty;
          Alcotest.test_case "clear" `Quick test_stat_clear;
        ]
        @ qsuite [ prop_stat_mean_matches_naive ] );
    ]
