(* The online watchdog's differential suite (PR 9): on every fuzzed run the
   streaming verdict must equal the post-hoc checker battery's, alert for
   alert — the same weak-SI read mismatches, the same inversion witness
   pairs at all three strictness levels, the same fence-audit failures.
   Plus the watchdog's own contracts: deterministic alert ordering, zero
   effect on simulation outcomes, and bounded state through continuous
   retirement (embedded system and simulator). *)

open Lsr_core
open Lsr_experiments
module Params = Lsr_workload.Params
module Json = Lsr_obs.Json

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- differential: watchdog verdict == Checker.analyze ---------------------- *)

let base_params =
  {
    Params.default with
    Params.num_secondaries = 2;
    clients_per_secondary = 5;
    warmup = 10.;
    duration = 120.;
  }

let both_cfg ?(params = base_params) guarantee ~seed =
  {
    (Sim_system.config params guarantee ~seed) with
    Sim_system.record_history = true;
    watchdog = true;
  }

(* The inversion witness pairs (earlier id, later id) the watchdog retained
   at one level. Comparable only when nothing was dropped past the alert
   cap. *)
let alert_pairs level (alerts : Watchdog.alert list) =
  List.filter_map
    (fun (a : Watchdog.alert) ->
      match a.Watchdog.kind with
      | Watchdog.Inversion { level = l; earlier; floor = _ } when l = level ->
        Some (earlier, a.Watchdog.txn)
      | _ -> None)
    alerts
  |> List.sort compare

let report_pairs (invs : Checker.inversion list) =
  List.map
    (fun (i : Checker.inversion) ->
      (i.Checker.earlier.History.id, i.Checker.later.History.id))
    invs
  |> List.sort compare

let assert_equivalent ~tag (o : Sim_system.outcome) =
  let report =
    match o.Sim_system.check_report with
    | Some r -> r
    | None -> Alcotest.failf "%s: no checker report" tag
  in
  let v =
    match o.Sim_system.watchdog_verdict with
    | Some v -> v
    | None -> Alcotest.failf "%s: no watchdog verdict" tag
  in
  check_int
    (tag ^ ": weak-SI read mismatches")
    (List.length report.Checker.weak_si_violations)
    v.Watchdog.read_mismatches;
  check_int
    (tag ^ ": inversions (all)")
    (List.length report.Checker.inversions_all)
    v.Watchdog.v_inversions_all;
  check_int
    (tag ^ ": inversions (in session)")
    (List.length report.Checker.inversions_in_session)
    v.Watchdog.v_inversions_in_session;
  check_int
    (tag ^ ": inversions (after update)")
    (List.length report.Checker.inversions_after_update)
    v.Watchdog.v_inversions_after_update;
  check_int
    (tag ^ ": fence failures")
    (List.length report.Checker.fence_violations)
    v.Watchdog.fence_failures;
  (* Witness-for-witness equality whenever the bounded log kept everything:
     the watchdog must blame the same (earlier, later) transaction pairs the
     post-hoc sweep finds, not merely count the same. *)
  if v.Watchdog.alerts_dropped = 0 then begin
    Alcotest.(check (list (pair int int)))
      (tag ^ ": witness pairs (all)")
      (report_pairs report.Checker.inversions_all)
      (alert_pairs Watchdog.All_sessions o.Sim_system.watchdog_alerts);
    Alcotest.(check (list (pair int int)))
      (tag ^ ": witness pairs (in session)")
      (report_pairs report.Checker.inversions_in_session)
      (alert_pairs Watchdog.In_session o.Sim_system.watchdog_alerts);
    Alcotest.(check (list (pair int int)))
      (tag ^ ": witness pairs (after update)")
      (report_pairs report.Checker.inversions_after_update)
      (alert_pairs Watchdog.After_update o.Sim_system.watchdog_alerts)
  end;
  (* Same final verdict per guarantee ladder rung. *)
  List.iter
    (fun g ->
      let online =
        v.Watchdog.read_mismatches = 0
        && v.Watchdog.fence_failures = 0
        &&
        match g with
        | Session.Weak -> true
        | Session.Prefix_consistent -> v.Watchdog.v_inversions_after_update = 0
        | Session.Strong_session -> v.Watchdog.v_inversions_in_session = 0
        | Session.Strong -> v.Watchdog.v_inversions_all = 0
      in
      check_bool
        (Printf.sprintf "%s: satisfies %s agrees" tag (Session.guarantee_name g))
        (Checker.satisfies g report) online)
    [
      Session.Weak; Session.Prefix_consistent; Session.Strong_session;
      Session.Strong;
    ]

let guarantees =
  [
    ("weak", Session.Weak);
    ("pcsi", Session.Prefix_consistent);
    ("strong-session", Session.Strong_session);
    ("strong", Session.Strong);
  ]

let test_differential_guarantees () =
  List.iter
    (fun (gname, g) ->
      List.iter
        (fun seed ->
          let tag = Printf.sprintf "%s seed=%d" gname seed in
          assert_equivalent ~tag (Sim_system.run (both_cfg g ~seed)))
        [ 11; 12; 13 ])
    guarantees

let test_differential_migration () =
  (* Cross-site load balancing provokes real in-session inversions under
     weak SI — the interesting case for the per-session floors. *)
  List.iter
    (fun (gname, g) ->
      List.iter
        (fun seed ->
          let cfg =
            { (both_cfg g ~seed) with Sim_system.migrate_prob = 0.4 }
          in
          let tag = Printf.sprintf "migrate %s seed=%d" gname seed in
          assert_equivalent ~tag (Sim_system.run cfg))
        [ 21; 22 ])
    guarantees

let test_differential_fences () =
  (* Fence mixes exercise the wall-order fence floor and the Max_age
     horizon audit in both checkers. *)
  let mixes =
    [
      ("session", Sim_system.All_reads Session.Session_seq);
      ("age", Sim_system.All_reads (Session.Max_age 2.0));
      ( "mix",
        Sim_system.Fence_mix
          [
            (0.3, Some Session.Session_seq);
            (0.2, Some (Session.Max_age 1.0));
            (0.5, None);
          ] );
    ]
  in
  List.iter
    (fun (mname, fence) ->
      List.iter
        (fun seed ->
          let cfg =
            { (both_cfg Session.Weak ~seed) with Sim_system.fence }
          in
          let tag = Printf.sprintf "fence %s seed=%d" mname seed in
          assert_equivalent ~tag (Sim_system.run cfg))
        [ 31; 32 ])
    mixes

let test_differential_faults () =
  (* Chaos networking delays refresh arbitrarily: snapshots get very stale,
     the retirement horizon crawls, and both checkers must still agree. *)
  List.iter
    (fun seed ->
      let cfg =
        {
          (both_cfg Session.Strong_session ~seed) with
          Sim_system.faults = Some Lsr_faults.Channel.chaos;
          migrate_prob = 0.2;
        }
      in
      let tag = Printf.sprintf "chaos seed=%d" seed in
      assert_equivalent ~tag (Sim_system.run cfg))
    [ 41; 42 ]

let test_differential_abortive () =
  (* A high abort rate exercises the aborted-update path: aborted attempts
     pin nothing, validate nothing, and must not shift any floor. *)
  let params = { base_params with Params.abort_prob = 0.3 } in
  List.iter
    (fun (gname, g) ->
      let tag = Printf.sprintf "aborts %s" gname in
      assert_equivalent ~tag (Sim_system.run (both_cfg ~params g ~seed:51)))
    guarantees

(* --- watchdog contracts ------------------------------------------------------ *)

let scrub (o : Sim_system.outcome) =
  {
    o with
    Sim_system.checker_cpu_s = 0.;
    check_report = None;
    watchdog_verdict = None;
    watchdog_alerts = [];
    watchdog_peak_state = 0;
    watchdog_report = None;
  }

let test_watchdog_never_perturbs () =
  (* Attaching the watchdog must not change a single simulation outcome
     field: it only observes, and virtual time never advances in its
     hooks. *)
  let run watchdog =
    Sim_system.run
      {
        (Sim_system.config base_params Session.Strong_session ~seed:5) with
        Sim_system.record_history = true;
        watchdog;
      }
  in
  let off = run false and on_ = run true in
  check_bool "identical scrubbed outcomes" true (scrub off = scrub on_);
  Alcotest.(check (list string))
    "identical check errors" off.Sim_system.check_errors
    on_.Sim_system.check_errors

let test_alerts_sorted_and_bounded () =
  let o =
    Sim_system.run
      { (both_cfg Session.Weak ~seed:7) with Sim_system.migrate_prob = 0.4 }
  in
  let v = Option.get o.Sim_system.watchdog_verdict in
  check_bool "run produced alerts" true (v.Watchdog.alerts_total > 0);
  let rec sorted = function
    | (a : Watchdog.alert) :: (b : Watchdog.alert) :: rest ->
      (a.Watchdog.at < b.Watchdog.at
      || (a.Watchdog.at = b.Watchdog.at && a.Watchdog.txn <= b.Watchdog.txn))
      && sorted (b :: rest)
    | _ -> true
  in
  check_bool "alerts sorted by (time, txn)" true
    (sorted o.Sim_system.watchdog_alerts);
  check_int "retained = total - dropped"
    (v.Watchdog.alerts_total - v.Watchdog.alerts_dropped)
    (List.length o.Sim_system.watchdog_alerts);
  check_int "verdict totals alerts by kind" v.Watchdog.alerts_total
    (v.Watchdog.read_mismatches + v.Watchdog.v_inversions_all
    + v.Watchdog.v_inversions_in_session
    + v.Watchdog.v_inversions_after_update
    + v.Watchdog.fence_failures);
  (* The JSON report is deterministic and sorted. *)
  match o.Sim_system.watchdog_report with
  | None -> Alcotest.fail "watchdog report missing"
  | Some report -> (
    let text = Json.to_string report in
    match Json.parse text with
    | Error e -> Alcotest.failf "watchdog report does not re-parse: %s" e
    | Ok reparsed ->
      check_bool "report keys already sorted" true
        (Json.to_string (Json.sort_keys reparsed) = text))

let test_bounded_memory () =
  (* Same trajectory, growing run length: the recorded history grows
     linearly while the watchdog's peak state stays within the (fixed)
     active visibility window — the long run's peak must stay far below its
     own transaction count and close to the short run's peak. *)
  let run duration =
    let params = { base_params with Params.duration } in
    Sim_system.run (both_cfg ~params Session.Strong_session ~seed:9)
  in
  let short = run 100. and long = run 800. in
  let txns (o : Sim_system.outcome) =
    o.Sim_system.reads_completed + o.Sim_system.updates_completed
  in
  check_bool "long run did ~8x the work" true (txns long > 5 * txns short);
  check_bool
    (Printf.sprintf "peak state flat across run lengths (%d vs %d)"
       short.Sim_system.watchdog_peak_state long.Sim_system.watchdog_peak_state)
    true
    (long.Sim_system.watchdog_peak_state
    < 2 * short.Sim_system.watchdog_peak_state);
  check_bool
    (Printf.sprintf "peak state %d well below %d txns"
       long.Sim_system.watchdog_peak_state (txns long))
    true
    (long.Sim_system.watchdog_peak_state * 4 < txns long)

(* --- embedded system --------------------------------------------------------- *)

let test_embedded_inversion_alert () =
  (* Provoke a textbook inversion in the embedded system: commit at the
     primary, read the not-yet-refreshed secondary. Under Weak that is
     legal for the ambient guarantee, but the watchdog still records the
     strong-SI-level inversion — and the post-hoc checker agrees. *)
  let sys = System.create ~secondaries:1 ~guarantee:Session.Weak ~watchdog:true () in
  let alice = System.connect sys "alice" in
  let bob = System.connect sys "bob" in
  (match System.update sys alice (fun h -> Handle.put h "x" "1") with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "seed update aborted");
  System.pump sys;
  (match System.update sys alice (fun h -> Handle.put h "x" "2") with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "second update aborted");
  (* No pump: bob reads the stale secondary after alice's commit finished. *)
  check_bool "stale read observed the old value" true
    (System.read sys bob (fun h -> Handle.get h "x") = Some "1");
  System.pump sys;
  let w = Option.get (System.watchdog sys) in
  let v = Watchdog.verdict w in
  check_bool "watchdog saw the strong-SI inversion" true
    (v.Watchdog.v_inversions_all > 0);
  check_int "no weak-SI mismatch (the stale snapshot was consistent)" 0
    v.Watchdog.read_mismatches;
  check_bool "weak guarantee still satisfied online" true
    (Watchdog.satisfies w Session.Weak);
  check_bool "strong would not be" false (Watchdog.satisfies w Session.Strong);
  (* Post-hoc agreement on the same run. *)
  let report =
    Checker.analyze ~clock:(System.commit_clock sys) (System.history sys)
  in
  check_int "post-hoc count agrees"
    (List.length report.Checker.inversions_all)
    v.Watchdog.v_inversions_all;
  Alcotest.(check (list (pair int int)))
    "post-hoc witnesses agree"
    (report_pairs report.Checker.inversions_all)
    (alert_pairs Watchdog.All_sessions (Watchdog.alerts w))

let test_embedded_retirement () =
  (* Refresh commits drive the horizon: once every secondary has applied a
     version and nothing pins it, it folds into the base map. *)
  let sys =
    System.create ~secondaries:2 ~guarantee:Session.Strong_session
      ~watchdog:true ()
  in
  let c = System.connect sys "writer" in
  for i = 1 to 50 do
    (match
       System.update sys c (fun h -> Handle.put h "k" (string_of_int i))
     with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "update aborted");
    if i mod 5 = 0 then System.pump sys
  done;
  System.pump sys;
  let w = Option.get (System.watchdog sys) in
  check_bool "horizon advanced" true (Watchdog.horizon w > 0);
  check_bool "versions were retired" true (Watchdog.retired_versions w > 40);
  check_bool
    (Printf.sprintf "live state small (%d live, %d retired)"
       (Watchdog.live_versions w) (Watchdog.retired_versions w))
    true
    (Watchdog.live_versions w < 10);
  check_bool "state size bounded" true
    (Watchdog.state_size w < Watchdog.peak_state w + 1);
  check_bool "clean verdict" true (Watchdog.satisfies w Session.Strong_session)

let test_embedded_recovery () =
  (* Crash/recover a secondary with the watchdog attached: recovery reseeds
     the site's visibility horizon and the verdict stays clean under the
     guarantee the system advertises. *)
  let sys =
    System.create ~secondaries:2 ~guarantee:Session.Strong_session
      ~watchdog:true ()
  in
  let c = System.connect sys "writer" in
  let put v =
    match System.update sys c (fun h -> Handle.put h "k" v) with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "update aborted"
  in
  put "1";
  System.pump sys;
  System.crash_secondary sys 1;
  put "2";
  put "3";
  System.recover_secondary sys 1;
  put "4";
  System.pump sys;
  let reader = System.connect sys ~secondary:1 "reader" in
  check_bool "recovered site serves the latest value" true
    (System.read sys reader (fun h -> Handle.get h "k") = Some "4");
  (match System.check sys with
  | Ok () -> ()
  | Error es -> Alcotest.failf "post-hoc check failed: %s" (String.concat "; " es));
  let w = Option.get (System.watchdog sys) in
  check_bool "watchdog verdict clean across crash/recovery" true
    (Watchdog.satisfies w Session.Strong_session);
  check_bool "recovery advanced the horizon" true (Watchdog.horizon w > 0)

let () =
  Alcotest.run "lsr_watchdog"
    [
      ( "differential",
        [
          Alcotest.test_case "all guarantees" `Slow test_differential_guarantees;
          Alcotest.test_case "session migration" `Slow
            test_differential_migration;
          Alcotest.test_case "fence mixes" `Slow test_differential_fences;
          Alcotest.test_case "chaos faults" `Slow test_differential_faults;
          Alcotest.test_case "high abort rate" `Slow test_differential_abortive;
        ] );
      ( "contracts",
        [
          Alcotest.test_case "never perturbs the run" `Quick
            test_watchdog_never_perturbs;
          Alcotest.test_case "alerts sorted, counted, bounded" `Quick
            test_alerts_sorted_and_bounded;
          Alcotest.test_case "bounded memory vs run length" `Slow
            test_bounded_memory;
        ] );
      ( "embedded",
        [
          Alcotest.test_case "inversion alert + post-hoc agreement" `Quick
            test_embedded_inversion_alert;
          Alcotest.test_case "continuous retirement" `Quick
            test_embedded_retirement;
          Alcotest.test_case "crash and recovery" `Quick test_embedded_recovery;
        ] );
    ]
