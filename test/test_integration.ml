(* End-to-end integration tests: the paper's motivating bookstore scenario
   across all three guarantees, long mixed workloads with interleaved lazy
   propagation, failure injection, and cross-layer consistency between the
   embedded system and the simulator. *)

open Lsr_storage
open Lsr_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let update_exn sys c f =
  match System.update sys c f with
  | Ok v -> v
  | Error _ -> Alcotest.fail "update aborted unexpectedly"

(* The §1 example: a customer buys books (T_buy) and immediately checks the
   order status (T_check). *)
let bookstore_scenario guarantee =
  let sys = System.create ~secondaries:3 ~guarantee () in
  let customer = System.connect sys "customer-7" in
  (* Seed the catalogue. *)
  let admin = System.connect sys "admin" in
  update_exn sys admin (fun h ->
      Handle.row_put h ~table:"books" ~pk:"sicp"
        [ ("title", Row.Text "SICP"); ("stock", Row.Int 5) ]);
  System.pump sys;
  (* T_buy: decrement stock, create the order. *)
  update_exn sys customer (fun h ->
      ignore
        (Handle.row_update h ~table:"books" ~pk:"sicp" (fun row ->
             Row.set row "stock" (Row.Int (Row.int_exn row "stock" - 1))));
      Handle.row_put h ~table:"orders" ~pk:"o-1"
        [ ("book", Row.Text "sicp"); ("status", Row.Text "placed") ]);
  (* T_check: same session reads the order status. *)
  let status =
    System.read sys customer (fun h ->
        Option.map
          (fun row -> Row.text_exn row "status")
          (Handle.row_get h ~table:"orders" ~pk:"o-1"))
  in
  (sys, status)

let test_bookstore_weak_inversion () =
  let sys, status = bookstore_scenario Session.Weak in
  check_bool "weak SI: T_check misses the purchase" true (status = None);
  let report = Checker.analyze (System.history sys) in
  check_bool "transaction inversion witnessed" true
    (report.Checker.inversions_in_session <> []);
  check_int "yet globally weak SI" 0 (List.length report.Checker.weak_si_violations)

let test_bookstore_session_si () =
  let sys, status = bookstore_scenario Session.Strong_session in
  check_bool "strong session SI: T_check sees the purchase" true
    (status = Some "placed");
  System.pump sys;
  match System.check sys with
  | Ok () -> ()
  | Error es -> Alcotest.fail (String.concat "; " es)

let test_bookstore_strong_si () =
  let sys, status = bookstore_scenario Session.Strong in
  check_bool "strong SI: T_check sees the purchase" true (status = Some "placed");
  System.pump sys;
  match System.check sys with
  | Ok () -> ()
  | Error es -> Alcotest.fail (String.concat "; " es)

let test_bookstore_other_customer_stale_under_session_si () =
  let sys = System.create ~secondaries:2 ~guarantee:Session.Strong_session () in
  let alice = System.connect sys ~secondary:0 "alice" in
  let bob = System.connect sys ~secondary:1 "bob" in
  update_exn sys alice (fun h -> Handle.put h "stock:sicp" "4");
  (* Bob's session has no ordering constraint against Alice's: he may read
     a stale copy without blocking. *)
  let v = System.read sys bob (fun h -> Handle.get h "stock:sicp") in
  check_bool "bob reads stale without waiting" true (v = None);
  check_int "no read blocked" 0 (System.blocked_reads sys)

(* A long mixed workload with adversarial pump timing: correctness must be
   independent of when lazy propagation happens. *)
let test_long_mixed_workload () =
  let sys = System.create ~secondaries:3 ~guarantee:Session.Strong_session () in
  let clients =
    Array.init 6 (fun i -> System.connect sys (Printf.sprintf "client-%d" i))
  in
  let pseudo = ref 12345 in
  let next_rand bound =
    pseudo := ((!pseudo * 1103515245) + 12345) land 0x3FFFFFFF;
    !pseudo mod bound
  in
  for step = 1 to 400 do
    let c = clients.(next_rand 6) in
    let key = Printf.sprintf "acct:%d" (next_rand 20) in
    (match next_rand 10 with
    | 0 | 1 | 2 ->
      ignore
        (System.update sys c (fun h ->
             let current =
               match Handle.get h key with Some v -> int_of_string v | None -> 0
             in
             Handle.put h key (string_of_int (current + 1))))
    | 3 | 4 | 5 | 6 -> ignore (System.read sys c (fun h -> Handle.get h key))
    | 7 -> ignore (System.propagate sys)
    | 8 -> ignore (System.refresh_all sys)
    | _ -> System.pump sys);
    if step mod 100 = 0 then System.pump sys
  done;
  System.pump sys;
  (match System.check sys with
  | Ok () -> ()
  | Error es -> Alcotest.fail (String.concat "; " es));
  (* Every secondary converged to the primary's state. *)
  let reference = Mvcc.committed_state (System.primary_db sys) in
  for i = 0 to 2 do
    Alcotest.(check (list (pair string string)))
      (Printf.sprintf "secondary %d" i)
      reference
      (Mvcc.committed_state (System.secondary_db sys i))
  done

let test_crash_during_traffic () =
  let sys = System.create ~secondaries:2 ~guarantee:Session.Strong_session () in
  let c0 = System.connect sys ~secondary:0 "c0" in
  let c1 = System.connect sys ~secondary:1 "c1" in
  for i = 1 to 10 do
    ignore
      (System.update sys c0 (fun h ->
           Handle.put h (Printf.sprintf "pre:%d" i) "x"))
  done;
  System.pump sys;
  System.crash_secondary sys 1;
  (* Traffic continues against the surviving site. *)
  for i = 1 to 10 do
    ignore
      (System.update sys c0 (fun h ->
           Handle.put h (Printf.sprintf "during:%d" i) "y"));
    ignore (System.read sys c0 (fun h -> Handle.get h "pre:1"))
  done;
  System.pump sys;
  System.recover_secondary sys 1;
  (* The recovered site serves its sessions again, including data committed
     while it was down. *)
  let v = System.read sys c1 (fun h -> Handle.get h "during:10") in
  check_bool "recovered site has missed updates" true (v = Some "y");
  for i = 1 to 5 do
    ignore
      (System.update sys c1 (fun h ->
           Handle.put h (Printf.sprintf "post:%d" i) "z"))
  done;
  System.pump sys;
  Alcotest.(check (list (pair string string)))
    "recovered secondary fully converged"
    (Mvcc.committed_state (System.primary_db sys))
    (Mvcc.committed_state (System.secondary_db sys 1));
  match System.check sys with
  | Ok () -> ()
  | Error es -> Alcotest.fail (String.concat "; " es)

let test_double_crash_recover () =
  let sys = System.create ~secondaries:2 ~guarantee:Session.Weak () in
  let c = System.connect sys ~secondary:0 "c" in
  System.crash_secondary sys 0;
  System.recover_secondary sys 0;
  System.crash_secondary sys 0;
  ignore (System.update sys c (fun h -> Handle.put h "x" "1"));
  System.recover_secondary sys 0;
  let v = System.read sys c (fun h -> Handle.get h "x") in
  check_bool "second recovery works" true (v = Some "1")

let test_recover_not_crashed_rejected () =
  let sys = System.create ~secondaries:1 ~guarantee:Session.Weak () in
  Alcotest.check_raises "recover healthy site"
    (Invalid_argument "System.recover_secondary: not crashed") (fun () ->
      System.recover_secondary sys 0)

(* Session relabeling: a client starting a new session sheds its ordering
   constraints, as in the simulator's session_time expiry. *)
let test_new_session_sheds_constraints () =
  let sys = System.create ~secondaries:1 ~guarantee:Session.Strong_session () in
  let c = System.connect sys "session-1" in
  ignore (System.update sys c (fun h -> Handle.put h "x" "1"));
  check_bool "own session would block" true
    (System.read_nowait sys c (fun h -> Handle.get h "x") = None);
  (* Same client, new session label. *)
  let c' = System.connect sys ~secondary:0 "session-2" in
  check_bool "fresh session reads immediately" true
    (System.read_nowait sys c' (fun h -> Handle.get h "x") <> None)

(* The embedded system and the simulator implement the same protocol; a
   deterministic trace driven through both must produce the same final
   primary state. The simulator's own checker validation is covered in
   test_experiments; here we sanity-check database convergence. *)
let test_simulator_secondary_converges_after_quiesce () =
  let params =
    {
      Lsr_workload.Params.default with
      Lsr_workload.Params.num_secondaries = 2;
      clients_per_secondary = 3;
      warmup = 10.;
      (* Leave dead air after the last possible propagation cycle so all
         refreshes finish before the run ends. *)
      duration = 300.;
      think_time = 3.;
      propagation_delay = 5.;
    }
  in
  let outcome =
    Lsr_experiments.Sim_system.run
      {
        (Lsr_experiments.Sim_system.config params Session.Strong_session ~seed:21) with
        Lsr_experiments.Sim_system.record_history = true;
      }
  in
  Alcotest.(check (list string)) "checker clean" []
    outcome.Lsr_experiments.Sim_system.check_errors;
  check_bool "refreshes happened" true
    (outcome.Lsr_experiments.Sim_system.refresh_commits > 0)

(* Indexed tables replicate like any other data: lookups at secondaries see
   exactly what refresh has installed, and compaction afterwards frees the
   version history without changing behaviour. *)
let test_indexed_tables_replicate () =
  let schema = [ ("books", [ "price" ]) ] in
  let sys =
    System.create ~secondaries:2 ~schema ~guarantee:Session.Strong_session ()
  in
  let c = System.connect sys "shop" in
  update_exn sys c (fun h ->
      Handle.row_put h ~table:"books" ~pk:"1"
        [ ("title", Row.Text "a"); ("price", Row.Int 10) ];
      Handle.row_put h ~table:"books" ~pk:"2"
        [ ("title", Row.Text "b"); ("price", Row.Int 10) ];
      Handle.row_put h ~table:"books" ~pk:"3"
        [ ("title", Row.Text "c"); ("price", Row.Int 20) ]);
  update_exn sys c (fun h ->
      ignore
        (Handle.row_update h ~table:"books" ~pk:"2" (fun row ->
             Row.set row "price" (Row.Int 20))));
  let cheap =
    System.read sys c (fun h ->
        Handle.row_lookup h ~table:"books" ~field:"price" ~value:(Row.Int 10))
  in
  Alcotest.(check (list string)) "index lookup at secondary" [ "1" ]
    (List.map fst cheap);
  System.pump sys;
  (match System.check sys with
  | Ok () -> ()
  | Error es -> Alcotest.fail (String.concat "; " es));
  (* Compaction keeps the system fully functional. *)
  let reclaimed = System.compact sys in
  check_bool "some versions reclaimed" true (reclaimed > 0);
  update_exn sys c (fun h ->
      Handle.row_put h ~table:"books" ~pk:"4"
        [ ("title", Row.Text "d"); ("price", Row.Int 10) ]);
  let cheap =
    System.read sys c (fun h ->
        Handle.row_lookup h ~table:"books" ~field:"price" ~value:(Row.Int 10))
  in
  Alcotest.(check (list string)) "lookup after compaction" [ "1"; "4" ]
    (List.map fst cheap);
  System.pump sys;
  Alcotest.(check (list (pair string string)))
    "replicas converged after compaction"
    (Mvcc.committed_state (System.primary_db sys))
    (Mvcc.committed_state (System.secondary_db sys 0))

let test_compact_reclaims_log_and_versions () =
  let sys = System.create ~secondaries:1 ~guarantee:Session.Weak () in
  let c = System.connect sys "c" in
  for i = 1 to 20 do
    ignore (System.update sys c (fun h -> Handle.put h "hot" (string_of_int i)))
  done;
  System.pump sys;
  let before = Mvcc.version_count (System.primary_db sys) in
  check_bool "versions accumulated" true (before >= 20);
  let reclaimed = System.compact sys in
  check_bool "most versions reclaimed" true (reclaimed >= 2 * (before - 2));
  let v = System.read sys c (fun h -> Handle.get h "hot") in
  check_bool "latest value intact" true (v = Some "20");
  (* The primary log below the propagation cursor was reclaimed. *)
  let wal = Primary.wal (System.primary sys) in
  (match Wal.entry wal 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "compact should truncate consumed log entries");
  (* Replication continues normally on the truncated log. *)
  (match System.update sys c (fun h -> Handle.put h "hot" "21") with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "update after compact failed");
  System.pump sys;
  Alcotest.(check (list (pair string string)))
    "replicas track after compaction"
    (Mvcc.committed_state (System.primary_db sys))
    (Mvcc.committed_state (System.secondary_db sys 0))

(* SQL traffic, lazy pumps, a crash and a recovery, all at once: the full
   stack must stay convergent and checkable, and index lookups must agree
   with scans at every replica afterwards. *)
let test_sql_soak_with_crash () =
  let schema = [ ("items", [ "grp" ]) ] in
  let sys =
    System.create ~secondaries:2 ~schema ~guarantee:Session.Strong_session ()
  in
  let clients =
    Array.init 3 (fun i -> System.connect sys (Printf.sprintf "s%d" i))
  in
  let rng = Lsr_sim.Rng.create 2026 in
  let sql_exn c stmt =
    match Lsr_sql.Sql.run sys c stmt with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "sql failed (%s): %s" stmt e
  in
  for step = 1 to 250 do
    let c = clients.(Lsr_sim.Rng.uniform rng ~lo:0 ~hi:2) in
    (* Fail over: sessions of a crashed secondary are served elsewhere. *)
    let c =
      if System.is_crashed sys (System.client_secondary c) then
        System.migrate sys c 0
      else c
    in
    let pk = Lsr_sim.Rng.uniform rng ~lo:0 ~hi:15 in
    let grp = Lsr_sim.Rng.uniform rng ~lo:0 ~hi:3 in
    (match Lsr_sim.Rng.uniform rng ~lo:0 ~hi:9 with
    | 0 | 1 | 2 ->
      sql_exn c
        (Printf.sprintf
           "INSERT INTO items (pk, grp, step) VALUES ('i%d', %d, %d)" pk grp step)
    | 3 ->
      sql_exn c (Printf.sprintf "UPDATE items SET grp = %d WHERE pk = 'i%d'" grp pk)
    | 4 -> sql_exn c (Printf.sprintf "DELETE FROM items WHERE pk = 'i%d'" pk)
    | 5 | 6 ->
      sql_exn c (Printf.sprintf "SELECT * FROM items WHERE grp = %d" grp)
    | 7 -> sql_exn c "SELECT COUNT(*) FROM items"
    | _ -> ignore (System.propagate sys));
    if step = 80 then System.crash_secondary sys 1;
    if step = 160 then begin
      System.recover_secondary sys 1;
      System.pump sys
    end
  done;
  System.pump sys;
  (match System.check sys with
  | Ok () -> ()
  | Error es -> Alcotest.fail (String.concat "; " es));
  (* Index lookups agree with scans on every replica. *)
  List.iter
    (fun db ->
      let txn = Mvcc.begin_txn db in
      let h = Handle.make ~schema db txn in
      for grp = 0 to 3 do
        let by_index =
          Handle.row_lookup h ~table:"items" ~field:"grp" ~value:(Row.Int grp)
        in
        let by_scan =
          Handle.row_scan h ~table:"items" ~where:(fun row ->
              Row.find row "grp" = Some (Row.Int grp))
        in
        Alcotest.(check int)
          (Printf.sprintf "grp %d consistent" grp)
          (List.length by_scan) (List.length by_index)
      done)
    [ System.primary_db sys; System.secondary_db sys 0; System.secondary_db sys 1 ];
  Alcotest.(check (list (pair string string)))
    "replicas converged"
    (Mvcc.committed_state (System.primary_db sys))
    (Mvcc.committed_state (System.secondary_db sys 1))

(* --- Lineage tracing across the embedded system -------------------------------- *)

let test_lineage_journey_complete () =
  (* Every update transaction's causal journey through the embedded system
     must be complete — primary commit, shipping, then enqueue / refresh /
     commit on every secondary — with monotone timestamps. *)
  let module Lineage = Lsr_obs.Lineage in
  let secondaries = 2 in
  let lineage = Lineage.create () in
  let sys =
    System.create ~secondaries ~guarantee:Session.Strong_session ~lineage ()
  in
  let c = System.connect sys "writer" in
  for i = 1 to 3 do
    update_exn sys c (fun h -> Handle.put h (Printf.sprintf "k%d" i) "v")
  done;
  System.pump sys;
  let txns = Lineage.txns lineage in
  check_int "one journey per update" 3 (List.length txns);
  List.iter
    (fun txn ->
      let j = Lineage.journey lineage ~txn in
      let count name =
        List.length
          (List.filter
             (fun ev -> Lineage.stage_name ev.Lineage.stage = name)
             j)
      in
      check_int "one primary commit" 1 (count "primary-commit");
      check_bool "shipped once" true (count "shipped" >= 1);
      check_int "enqueued on every secondary" secondaries (count "enqueued");
      check_int "refresh started on every secondary" secondaries
        (count "refresh-started");
      check_int "refresh committed on every secondary" secondaries
        (count "refresh-committed");
      (* Causal order: the journey starts at the primary and its timestamps
         never go backwards. *)
      (match j with
      | first :: _ ->
        Alcotest.(check string)
          "journey starts with the primary commit" "primary-commit"
          (Lineage.stage_name first.Lineage.stage)
      | [] -> Alcotest.fail "empty journey");
      let rec mono = function
        | a :: (b :: _ as rest) ->
          a.Lineage.time <= b.Lineage.time && mono rest
        | [ _ ] | [] -> true
      in
      check_bool "monotone timestamps" true (mono j))
    txns;
  (* Per-site refresh lags were derived from the journeys. *)
  List.iter
    (fun site ->
      check_int
        ("refresh lags at " ^ site)
        3
        (List.length (Lineage.refresh_lags lineage ~site)))
    (Lineage.sites lineage)

let () =
  Alcotest.run "integration"
    [
      ( "bookstore",
        [
          Alcotest.test_case "weak SI inverts T_check" `Quick
            test_bookstore_weak_inversion;
          Alcotest.test_case "strong session SI sees purchase" `Quick
            test_bookstore_session_si;
          Alcotest.test_case "strong SI sees purchase" `Quick
            test_bookstore_strong_si;
          Alcotest.test_case "other customer stays lazy" `Quick
            test_bookstore_other_customer_stale_under_session_si;
        ] );
      ( "soak",
        [
          Alcotest.test_case "long mixed workload" `Slow test_long_mixed_workload;
          Alcotest.test_case "simulator converges" `Slow
            test_simulator_secondary_converges_after_quiesce;
        ] );
      ( "failures",
        [
          Alcotest.test_case "crash during traffic" `Quick test_crash_during_traffic;
          Alcotest.test_case "double crash/recover" `Quick test_double_crash_recover;
          Alcotest.test_case "recover healthy rejected" `Quick
            test_recover_not_crashed_rejected;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "new session sheds constraints" `Quick
            test_new_session_sheds_constraints;
        ] );
      ( "maintenance",
        [
          Alcotest.test_case "indexed tables replicate" `Quick
            test_indexed_tables_replicate;
          Alcotest.test_case "compact reclaims" `Quick
            test_compact_reclaims_log_and_versions;
          Alcotest.test_case "sql soak with crash" `Slow test_sql_soak_with_crash;
        ] );
      ( "lineage",
        [
          Alcotest.test_case "journeys complete and monotone" `Quick
            test_lineage_journey_complete;
        ] );
    ]
