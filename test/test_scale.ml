(* The open-loop aggregated client model (PR 6): statistical equivalence
   against the paper's closed-loop model at matched offered load, arrival-
   process sanity, bitwise determinism, a hundred-thousand-client run with
   the full checker battery, the BENCH_10.json schema contract, the
   Session_seq fence / strong-session-SI equivalence (PR 7), and the online
   watchdog's bounded-memory scale contract (PR 9). *)

open Lsr_core
open Lsr_experiments
module Params = Lsr_workload.Params
module Confidence = Lsr_stats.Confidence
module Json = Lsr_obs.Json

let check_bool = Alcotest.(check bool)

(* Small MPL so the closed-loop system is far from saturation: there the
   closed-loop offered load equals the open-loop arrival rate and the two
   models must agree on every steady-state statistic. *)
let eq_params =
  {
    Params.default with
    Params.num_secondaries = 2;
    clients_per_secondary = 10;
    warmup = 30.;
    duration = 230.;
  }

let eq_config guarantee ~seed mode =
  {
    (Sim_system.config eq_params guarantee ~seed) with
    Sim_system.record_history = true;
    client_mode = mode;
  }

let open_mode =
  Sim_system.Open_loop
    { clients = 10; arrival = Sim_system.Poisson; session_pool = 0 }

let replicate guarantee mode =
  List.init 5 (fun i -> Sim_system.run (eq_config guarantee ~seed:(100 + i) mode))

(* Two means are equivalent when their 95% Student-t intervals overlap,
   with a small relative floor so zero-width intervals (e.g. an abort rate
   of exactly 0 in every replication) don't demand bitwise equality. *)
let compatible name a b =
  let ia = Confidence.of_samples a and ib = Confidence.of_samples b in
  let gap = Float.abs (ia.Confidence.mean -. ib.Confidence.mean) in
  let slack =
    ia.Confidence.half_width +. ib.Confidence.half_width
    +. (0.1 *. Float.max (Float.abs ia.Confidence.mean) (Float.abs ib.Confidence.mean))
    +. 1e-6
  in
  check_bool
    (Printf.sprintf "%s: |%.4f - %.4f| <= %.4f" name ia.Confidence.mean
       ib.Confidence.mean slack)
    true (gap <= slack)

let guarantees =
  [
    ("weak", Session.Weak);
    ("pcsi", Session.Prefix_consistent);
    ("strong-session", Session.Strong_session);
    ("strong", Session.Strong);
  ]

let test_equivalence () =
  List.iter
    (fun (gname, g) ->
      let closed = replicate g Sim_system.Closed_loop in
      let opened = replicate g open_mode in
      List.iter
        (fun (o : Sim_system.outcome) ->
          Alcotest.(check (list string))
            (gname ^ ": closed-loop run satisfies its guarantee")
            [] o.Sim_system.check_errors)
        closed;
      List.iter
        (fun (o : Sim_system.outcome) ->
          Alcotest.(check (list string))
            (gname ^ ": open-loop run satisfies its guarantee")
            [] o.Sim_system.check_errors)
        opened;
      let metric f l = List.map f l in
      compatible
        (gname ^ ": throughput")
        (metric (fun o -> o.Sim_system.throughput_fast) closed)
        (metric (fun o -> o.Sim_system.throughput_fast) opened);
      compatible
        (gname ^ ": abort rate")
        (metric
           (fun (o : Sim_system.outcome) ->
             float_of_int o.Sim_system.aborts
             /. float_of_int (max 1 o.Sim_system.updates_completed))
           closed)
        (metric
           (fun (o : Sim_system.outcome) ->
             float_of_int o.Sim_system.aborts
             /. float_of_int (max 1 o.Sim_system.updates_completed))
           opened);
      compatible
        (gname ^ ": read age")
        (metric (fun o -> o.Sim_system.read_age_mean) closed)
        (metric (fun o -> o.Sim_system.read_age_mean) opened))
    guarantees

let scrub (o : Sim_system.outcome) =
  (* checker_cpu_s is wall CPU — the only nondeterministic outcome field.
     check_report is dropped too: the fence-vs-guarantee equivalence below
     compares a fenced-Weak run against an unfenced Strong_session run, and
     the two histories legitimately differ in recorded fence claims even
     though every simulation trajectory field is identical. *)
  { o with Sim_system.checker_cpu_s = 0.; check_report = None }

let test_fence_session_equivalence () =
  (* A Session_seq fence on every read under ALG-WEAK-SI must reduce exactly
     to ALG-STRONG-SESSION-SI: the fence policy draws nothing from the
     workload rng, so per seed the two configurations replay the same random
     stream, every read blocks on the same threshold, and the checker
     returns identical verdicts. Closed-loop trajectories are bitwise
     identical; the open-loop comparison is statistical (a rotating session
     label can gain commits while a read waits, and the fence resolves its
     threshold once at submission). *)
  let fenced_cfg ~seed mode =
    {
      (eq_config Session.Weak ~seed mode) with
      Sim_system.fence = Sim_system.All_reads Session.Session_seq;
    }
  in
  List.iter
    (fun seed ->
      let plain =
        Sim_system.run
          (eq_config Session.Strong_session ~seed Sim_system.Closed_loop)
      in
      let fenced = Sim_system.run (fenced_cfg ~seed Sim_system.Closed_loop) in
      Alcotest.(check (list string))
        "checker verdicts identical" plain.Sim_system.check_errors
        fenced.Sim_system.check_errors;
      check_bool "every read carried the fence" true
        (fenced.Sim_system.fenced_reads >= fenced.Sim_system.reads_completed);
      check_bool "the fenced run earned its verdict (reads blocked)" true
        (fenced.Sim_system.blocked_reads = plain.Sim_system.blocked_reads);
      let norm o = scrub { o with Sim_system.fenced_reads = 0 } in
      check_bool "closed-loop trajectories bitwise identical" true
        (norm plain = norm fenced))
    [ 100; 101; 102 ];
  let plain = replicate Session.Strong_session open_mode in
  let fenced =
    List.init 5 (fun i -> Sim_system.run (fenced_cfg ~seed:(100 + i) open_mode))
  in
  List.iter
    (fun (o : Sim_system.outcome) ->
      Alcotest.(check (list string))
        "open-loop fenced run passes the checker (incl. fence audit)" []
        o.Sim_system.check_errors)
    fenced;
  let metric f l = List.map f l in
  compatible "fence≡session: throughput"
    (metric (fun o -> o.Sim_system.throughput_fast) plain)
    (metric (fun o -> o.Sim_system.throughput_fast) fenced);
  compatible "fence≡session: read rt"
    (metric (fun o -> o.Sim_system.read_rt_mean) plain)
    (metric (fun o -> o.Sim_system.read_rt_mean) fenced);
  compatible "fence≡session: blocked reads"
    (metric (fun o -> float_of_int o.Sim_system.blocked_reads) plain)
    (metric (fun o -> float_of_int o.Sim_system.blocked_reads) fenced)

let test_mmpp_sanity () =
  (* The MMPP keeps the long-run mean rate: a bursty run completes a
     transaction count comparable to the Poisson run's, and the burstiness
     must not break any guarantee. *)
  let run mode = Sim_system.run (eq_config Session.Strong_session ~seed:7 mode) in
  let poisson = run open_mode in
  let bursty =
    run
      (Sim_system.Open_loop
         { clients = 10; arrival = Sim_system.Mmpp 4.0; session_pool = 0 })
  in
  let txns (o : Sim_system.outcome) =
    o.Sim_system.reads_completed + o.Sim_system.updates_completed
  in
  check_bool "bursty run completed work" true (txns bursty > 0);
  Alcotest.(check (list string))
    "bursty run satisfies its guarantee" [] bursty.Sim_system.check_errors;
  let ratio = float_of_int (txns bursty) /. float_of_int (txns poisson) in
  check_bool
    (Printf.sprintf "mean rate preserved (ratio %.2f)" ratio)
    true
    (ratio > 0.6 && ratio < 1.4)

let test_determinism () =
  let run seed = Sim_system.run (eq_config Session.Strong_session ~seed open_mode) in
  check_bool "same seed, identical outcome" true (scrub (run 5) = scrub (run 5));
  check_bool "different seed, different outcome" true
    (scrub (run 5) <> scrub (run 6))

(* The runtest-sized version of the BENCH_10 watchdog showcase: 100k modeled
   clients, history recording OFF, the online watchdog alone verifying the
   guarantee — in state bounded by the active visibility window, not the
   run length. *)
let test_watchdog_bounded_at_scale () =
  let params =
    {
      Params.default with
      Params.num_secondaries = 2;
      clients_per_secondary = 50_000;
      op_service_time = 1e-6;
      propagation_delay = 0.5;
      tran_size_min = 2;
      tran_size_max = 6;
      warmup = 0.5;
      (* Long enough that the transaction count dwarfs the active visibility
         window (~0.7 virtual s of in-flight work at this offered rate): the
         peak-state bound below is peak/txns ≈ window/duration, so a short
         run would fail it even with retirement working perfectly. *)
      duration = 6.0;
    }
  in
  let cfg =
    {
      (Sim_system.config params Session.Strong_session ~seed:42) with
      Sim_system.watchdog = true;
      client_mode =
        Sim_system.Open_loop
          { clients = 50_000; arrival = Sim_system.Poisson; session_pool = 0 };
    }
  in
  let o = Sim_system.run cfg in
  Alcotest.(check (list string))
    "watchdog verdict clean at 100k modeled clients (no history recorded)" []
    o.Sim_system.check_errors;
  check_bool "no history was recorded" true (o.Sim_system.check_report = None);
  let txns = o.Sim_system.reads_completed + o.Sim_system.updates_completed in
  check_bool
    (Printf.sprintf "offered load is actually reached (%d txns)" txns)
    true (txns > 10_000);
  check_bool
    (Printf.sprintf "peak watchdog state %d bounded well below %d txns"
       o.Sim_system.watchdog_peak_state txns)
    true
    (o.Sim_system.watchdog_peak_state > 0
    && o.Sim_system.watchdog_peak_state * 4 < txns);
  (* Retirement actually ran: the horizon advanced and versions were folded
     into the base map, rather than every chain growing for the whole run. *)
  match o.Sim_system.watchdog_report with
  | None -> Alcotest.fail "watchdog run must produce a report"
  | Some report -> (
    match (Json.member "retired_versions" report, Json.member "horizon" report)
    with
    | Some (Json.Num retired), Some (Json.Num horizon) ->
      check_bool "versions were retired continuously" true (retired > 0.);
      check_bool "the retirement horizon advanced" true (horizon > 0.)
    | _ -> Alcotest.fail "watchdog report missing retirement fields")

let test_hundred_thousand_clients () =
  (* A runtest-sized version of the perf-bench showcase: 100k modeled
     clients across two sites, history recording on, full checker battery
     at the end. The committed BENCH_10.json covers the 10^6 point. *)
  let params =
    {
      Params.default with
      Params.num_secondaries = 2;
      clients_per_secondary = 50_000;
      op_service_time = 1e-6;
      propagation_delay = 0.5;
      tran_size_min = 2;
      tran_size_max = 6;
      warmup = 0.5;
      duration = 2.0;
    }
  in
  let o =
    Sim_system.run
      {
        (Sim_system.config params Session.Strong_session ~seed:42) with
        Sim_system.record_history = true;
        client_mode =
          Sim_system.Open_loop
            { clients = 50_000; arrival = Sim_system.Poisson; session_pool = 0 };
      }
  in
  Alcotest.(check (list string))
    "checker battery passes at 100k modeled clients" []
    o.Sim_system.check_errors;
  let txns = o.Sim_system.reads_completed + o.Sim_system.updates_completed in
  check_bool
    (Printf.sprintf "offered load is actually reached (%d txns)" txns)
    true (txns > 10_000);
  check_bool "checker really ran" true (o.Sim_system.checker_cpu_s >= 0.)

(* --- BENCH_10.json schema ----------------------------------------------------- *)

let synthetic_phase label =
  {
    Perf_bench.label;
    cpu_s = 1.5;
    sim_events = 1000;
    events_per_s = 666.7;
    txns = 100;
    txns_per_s = 66.7;
    peak_rss_kb = 4096;
    checker_cpu_s = 0.1;
    check_errors = 0;
    watchdog_alerts = 0;
    watchdog_peak_state = 0;
    flight_events = 0;
    flight_bytes = 0;
  }

let synthetic_report =
  {
    Perf_bench.seed = 1;
    quick = true;
    sites = 2;
    pair_clients_per_site = 10;
    offered_per_site = 1.4;
    virtual_s = 12.;
    open_loop = synthetic_phase "open-loop";
    closed_loop = synthetic_phase "closed-loop";
    speedup_events_per_s = 1.0;
    showcase_clients = 20;
    showcase = synthetic_phase "showcase";
    showcase_plain = synthetic_phase "showcase-plain";
    showcase_watchdog = synthetic_phase "showcase-watchdog";
    watchdog_overhead_frac = 0.05;
    showcase_flight = synthetic_phase "showcase-flight";
    recorder_overhead_frac = 0.02;
  }

let test_bench_schema_roundtrip () =
  let text = Json.to_string (Perf_bench.to_json synthetic_report) in
  match Json.parse text with
  | Error e -> Alcotest.failf "emitted report does not re-parse: %s" e
  | Ok j -> (
    match Perf_bench.validate j with
    | Ok () -> ()
    | Error e -> Alcotest.failf "emitted report fails its own schema: %s" e)

let test_bench_schema_rejects () =
  let strip field = function
    | Json.Obj fields -> Json.Obj (List.remove_assoc field fields)
    | j -> j
  in
  let j = Perf_bench.to_json synthetic_report in
  List.iter
    (fun field ->
      match Perf_bench.validate (strip field j) with
      | Error _ -> ()
      | Ok () -> Alcotest.failf "schema accepted a report without %S" field)
    [
      "bench"; "seed"; "open_loop"; "speedup_events_per_s"; "showcase";
      "showcase_watchdog"; "watchdog_overhead_frac"; "showcase_flight";
      "recorder_overhead_frac";
    ];
  match Perf_bench.validate (Json.Str "nope") with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "schema accepted a non-object"

let test_committed_bench_report () =
  (* The committed perf trajectory: full-scale (not quick), the open-loop
     model well ahead of the closed-loop events/s at equal offered load, the
     showcase at >= 10^6 modeled clients with a clean checker battery.

     Floor history: BENCH_6/BENCH_7 asserted >= 5x, measured in one process
     where the closed-loop phase inherited the open-loop phase's heap. Since
     BENCH_9 each phase runs in its own forked child (best-of-N reps,
     per-phase RSS) and the isolated closed-loop baseline is genuinely
     faster, so the honest ratio re-bases to ~3-4x. The floor guards the
     regression that matters — aggregation collapsing toward parity — not
     the old measurement artifact. *)
  (* Under `dune runtest` the cwd is _build/default/test; under a direct
     `dune exec` it is the project root. *)
  let file =
    if Sys.file_exists "../BENCH_10.json" then "../BENCH_10.json"
    else "BENCH_10.json"
  in
  let text = In_channel.with_open_bin file In_channel.input_all in
  let j =
    match Json.parse text with
    | Ok j -> j
    | Error e -> Alcotest.failf "BENCH_10.json is invalid JSON: %s" e
  in
  (match Perf_bench.validate j with
  | Ok () -> ()
  | Error e -> Alcotest.failf "BENCH_10.json fails the schema: %s" e);
  let num path =
    match Json.member path j with
    | Some (Json.Num f) -> f
    | _ -> Alcotest.failf "missing numeric field %S" path
  in
  (match Json.member "quick" j with
  | Some (Json.Bool false) -> ()
  | _ -> Alcotest.fail "committed report must come from a full-scale run");
  check_bool
    (Printf.sprintf "speedup %.2f >= 2.5x" (num "speedup_events_per_s"))
    true
    (num "speedup_events_per_s" >= 2.5);
  check_bool "showcase at a million modeled clients" true
    (num "showcase_clients" >= 1_000_000.);
  (match Json.member "showcase" j with
  | Some showcase -> (
    match Json.member "check_errors" showcase with
    | Some (Json.Num 0.) -> ()
    | _ -> Alcotest.fail "showcase checker battery must be clean")
  | None -> Alcotest.fail "missing showcase phase");
  (* The watchdog showcase (history recording off): clean online verdict,
     and peak state bounded by the active visibility window — far below the
     transaction count the post-hoc checker would have had to record. *)
  (match Json.member "showcase_watchdog" j with
  | None -> Alcotest.fail "missing showcase_watchdog phase"
  | Some wd ->
    let wd_num name =
      match Json.member name wd with
      | Some (Json.Num f) -> f
      | _ -> Alcotest.failf "missing numeric field showcase_watchdog.%S" name
    in
    check_bool "watchdog showcase verdict is clean" true
      (wd_num "check_errors" = 0.);
    check_bool "watchdog really tracked state" true
      (wd_num "watchdog_peak_state" > 0.);
    check_bool
      (Printf.sprintf "watchdog peak state %.0f bounded well below %.0f txns"
         (wd_num "watchdog_peak_state") (wd_num "txns"))
      true
      (wd_num "watchdog_peak_state" *. 4. < wd_num "txns"));
  (* The flight showcase: the recorder absorbed the full event stream of a
     million-client run into a footprint that is a rounding error next to
     the phase's own RSS. *)
  match Json.member "showcase_flight" j with
  | None -> Alcotest.fail "missing showcase_flight phase"
  | Some fr ->
    let fr_num name =
      match Json.member name fr with
      | Some (Json.Num f) -> f
      | _ -> Alcotest.failf "missing numeric field showcase_flight.%S" name
    in
    check_bool "flight recorder really saw events" true
      (fr_num "flight_events" > 1_000_000.);
    check_bool
      (Printf.sprintf "flight footprint %.0f bytes stays under 1 MiB"
         (fr_num "flight_bytes"))
      true
      (fr_num "flight_bytes" > 0. && fr_num "flight_bytes" < 1_048_576.)

let () =
  Alcotest.run "lsr_scale"
    [
      ( "equivalence",
        [
          Alcotest.test_case "open vs closed loop, all guarantees" `Slow
            test_equivalence;
          Alcotest.test_case "session fence ≡ strong-session SI" `Slow
            test_fence_session_equivalence;
          Alcotest.test_case "mmpp sanity" `Quick test_mmpp_sanity;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "scale",
        [
          Alcotest.test_case "100k modeled clients + checker" `Slow
            test_hundred_thousand_clients;
          Alcotest.test_case "100k modeled clients, watchdog only" `Slow
            test_watchdog_bounded_at_scale;
        ] );
      ( "bench-schema",
        [
          Alcotest.test_case "roundtrip" `Quick test_bench_schema_roundtrip;
          Alcotest.test_case "rejects bad reports" `Quick test_bench_schema_rejects;
          Alcotest.test_case "committed BENCH_10.json" `Quick
            test_committed_bench_report;
        ] );
    ]
