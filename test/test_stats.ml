(* Tests for the statistics package (lsr_stats): confidence intervals and
   table rendering. *)

open Lsr_stats

let check_bool = Alcotest.(check bool)

let test_t_critical_values () =
  Alcotest.(check (float 1e-3)) "df=1" 12.706 (Confidence.t_critical ~df:1);
  Alcotest.(check (float 1e-3)) "df=4 (5 runs)" 2.776 (Confidence.t_critical ~df:4);
  Alcotest.(check (float 1e-3)) "df=30" 2.042 (Confidence.t_critical ~df:30);
  Alcotest.(check (float 1e-3)) "df=40" 2.021 (Confidence.t_critical ~df:40);
  Alcotest.(check (float 1e-3)) "df=60" 2.000 (Confidence.t_critical ~df:60);
  Alcotest.(check (float 1e-3)) "df=100" 1.984 (Confidence.t_critical ~df:100);
  Alcotest.(check (float 1e-3)) "df=120" 1.980 (Confidence.t_critical ~df:120);
  Alcotest.(check (float 1e-3)) "df=10000 ~ normal" 1.96
    (Confidence.t_critical ~df:10_000)

let test_t_critical_monotone () =
  (* The quantile decreases in df everywhere — in particular there is no
     cliff at the dense-table edge (the old code jumped 2.042 -> 1.96 at
     df = 31) — and stays above the normal 1.96 limit. *)
  for df = 1 to 1_000 do
    let here = Confidence.t_critical ~df and next = Confidence.t_critical ~df:(df + 1) in
    if next > here +. 1e-12 then
      Alcotest.failf "t_critical increased from df=%d (%.6f) to df=%d (%.6f)"
        df here (df + 1) next;
    if df >= 30 && here -. next > 0.005 then
      Alcotest.failf "cliff of %.4f between df=%d and df=%d" (here -. next) df
        (df + 1);
    check_bool "above normal limit" true (here > 1.96)
  done

let test_t_critical_invalid () =
  Alcotest.check_raises "df=0" (Invalid_argument "Confidence.t_critical: df < 1")
    (fun () -> ignore (Confidence.t_critical ~df:0))

let test_interval_of_known_samples () =
  (* Five samples with mean 10 and sample stddev 1: hw = 2.776 / sqrt 5. *)
  let i = Confidence.of_samples [ 9.; 9.5; 10.; 10.5; 11. ] in
  Alcotest.(check (float 1e-9)) "mean" 10. i.Confidence.mean;
  Alcotest.(check int) "n" 5 i.Confidence.n;
  let stddev = sqrt (2.5 /. 4.) in
  Alcotest.(check (float 1e-6)) "half width"
    (2.776 *. stddev /. sqrt 5.)
    i.Confidence.half_width

let test_interval_singleton () =
  let i = Confidence.of_samples [ 3.5 ] in
  Alcotest.(check (float 0.)) "mean" 3.5 i.Confidence.mean;
  Alcotest.(check (float 0.)) "zero width" 0. i.Confidence.half_width

let test_interval_empty () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Confidence.of_samples: empty sample list") (fun () ->
      ignore (Confidence.of_samples []))

let test_interval_constant_samples () =
  let i = Confidence.of_samples [ 2.; 2.; 2. ] in
  Alcotest.(check (float 0.)) "zero width for constant" 0. i.Confidence.half_width

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  n = 0 || scan 0

let test_interval_to_string () =
  let s = Confidence.to_string (Confidence.of_samples [ 1.; 2.; 3. ]) in
  check_bool "contains plus-minus" true (contains ~needle:"\xc2\xb1" s)

let test_table_render_alignment () =
  let rendered =
    Table_fmt.render ~header:[ "x"; "value" ]
      [ [ "1"; "10.5" ]; [ "100"; "7" ] ]
  in
  let lines = String.split_on_char '\n' rendered in
  Alcotest.(check int) "header + rule + 2 rows" 4 (List.length lines);
  (* All lines are the same width. *)
  let widths = List.map String.length lines in
  check_bool "aligned" true (List.for_all (fun w -> w = List.hd widths) widths)

let test_table_ragged_rows () =
  let rendered = Table_fmt.render ~header:[ "a"; "b"; "c" ] [ [ "1" ] ] in
  check_bool "no crash on ragged rows" true (String.length rendered > 0)

let test_float_cell () =
  Alcotest.(check string) "integral trims" "5" (Table_fmt.float_cell 5.0);
  Alcotest.(check string) "decimals keep" "5.25" (Table_fmt.float_cell 5.25);
  Alcotest.(check string) "inf clamped" "n/a" (Table_fmt.float_cell infinity);
  Alcotest.(check string) "-inf clamped" "n/a"
    (Table_fmt.float_cell neg_infinity);
  Alcotest.(check string) "nan clamped" "n/a" (Table_fmt.float_cell nan)

(* --- Histogram ------------------------------------------------------------- *)

let test_histogram_quantiles () =
  let h = Histogram.create () in
  for i = 1 to 100 do
    Histogram.record h (float_of_int i)
  done;
  Alcotest.(check int) "count" 100 (Histogram.count h);
  Alcotest.(check (float 0.)) "median" 50. (Histogram.median h);
  Alcotest.(check (float 0.)) "p95" 95. (Histogram.p95 h);
  Alcotest.(check (float 0.)) "p99" 99. (Histogram.p99 h);
  Alcotest.(check (float 0.)) "q=0 is min" 1. (Histogram.quantile h 0.);
  Alcotest.(check (float 0.)) "q=1 is max" 100. (Histogram.quantile h 1.)

let test_histogram_unsorted_input () =
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 5.; 1.; 9.; 3.; 7. ];
  Alcotest.(check (float 0.)) "median of odd set" 5. (Histogram.median h);
  (* More samples after a quantile query invalidate the cache. *)
  Histogram.record h 11.;
  Alcotest.(check (float 0.)) "max updates" 11. (Histogram.quantile h 1.)

let test_histogram_empty_and_clear () =
  let h = Histogram.create () in
  Alcotest.(check (float 0.)) "empty quantile" 0. (Histogram.p95 h);
  Histogram.record h 4.;
  Histogram.clear h;
  Alcotest.(check int) "cleared" 0 (Histogram.count h)

let test_histogram_bad_q () =
  let h = Histogram.create () in
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Histogram.quantile: q outside [0, 1]") (fun () ->
      ignore (Histogram.quantile h 1.5))

let prop_histogram_matches_sorted_list =
  QCheck.Test.make ~name:"quantile = nearest rank of sorted samples" ~count:300
    QCheck.(pair (list_of_size (Gen.int_range 1 50) (float_range (-100.) 100.))
              (float_range 0.01 1.))
    (fun (xs, q) ->
      let h = Histogram.create () in
      List.iter (Histogram.record h) xs;
      let sorted = List.sort Float.compare xs in
      let n = List.length xs in
      let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
      let expected = List.nth sorted (max 0 (min (n - 1) (rank - 1))) in
      Histogram.quantile h q = expected)

let () =
  Alcotest.run "lsr_stats"
    [
      ( "confidence",
        [
          Alcotest.test_case "t critical values" `Quick test_t_critical_values;
          Alcotest.test_case "t critical monotone" `Quick
            test_t_critical_monotone;
          Alcotest.test_case "t critical invalid" `Quick test_t_critical_invalid;
          Alcotest.test_case "interval of known samples" `Quick
            test_interval_of_known_samples;
          Alcotest.test_case "singleton" `Quick test_interval_singleton;
          Alcotest.test_case "empty raises" `Quick test_interval_empty;
          Alcotest.test_case "constant samples" `Quick
            test_interval_constant_samples;
          Alcotest.test_case "to_string" `Quick test_interval_to_string;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "unsorted input" `Quick test_histogram_unsorted_input;
          Alcotest.test_case "empty/clear" `Quick test_histogram_empty_and_clear;
          Alcotest.test_case "bad q" `Quick test_histogram_bad_q;
          QCheck_alcotest.to_alcotest prop_histogram_matches_sorted_list;
        ] );
      ( "table_fmt",
        [
          Alcotest.test_case "alignment" `Quick test_table_render_alignment;
          Alcotest.test_case "ragged rows" `Quick test_table_ragged_rows;
          Alcotest.test_case "float cell" `Quick test_float_cell;
        ] );
    ]
