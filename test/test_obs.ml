(* Tests for the observability substrate (lsr_obs): instrument registry
   semantics, log-scale histogram bucketing, the null instance, and the two
   JSON exporters (validated with the library's own parser). *)

open Lsr_obs

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* --- Json ------------------------------------------------------------------- *)

let parse_ok s =
  match Json.parse s with
  | Ok j -> j
  | Error e -> Alcotest.failf "parse %S failed: %s" s e

let test_json_roundtrip () =
  let cases =
    [
      "null"; "true"; "false"; "0"; "-12.5"; "1e-06"; "\"hi\"";
      "{\"a\":[1,2,{\"b\":\"x\\n\"}],\"c\":null}"; "[]"; "{}";
    ]
  in
  List.iter
    (fun s ->
      let j = parse_ok s in
      (* Re-emitting and re-parsing must be a fixed point. *)
      let again = Json.to_string j in
      check_bool ("roundtrip " ^ s) true (parse_ok again = j))
    cases

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "parse %S should have failed" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ]

let test_json_number_formatting () =
  check_string "integral" "3" (Json.number 3.);
  check_string "nan maps to null" "null" (Json.number nan);
  check_string "inf maps to null" "null" (Json.number infinity)

let test_json_escape () =
  let buf = Buffer.create 16 in
  Json.escape buf "a\"b\\c\nd\tе";
  let s = Buffer.contents buf in
  (match Json.parse s with
  | Ok (Json.Str v) -> check_string "escape roundtrip" "a\"b\\c\nd\tе" v
  | Ok _ | Error _ -> Alcotest.fail "escaped string did not parse back");
  check_bool "quoted" true (String.length s > 2 && s.[0] = '"')

(* --- Registry --------------------------------------------------------------- *)

let test_counter_interning () =
  let t = Obs.create () in
  let a = Obs.counter t "x.hits" and b = Obs.counter t "x.hits" in
  Obs.incr a;
  Obs.incr ~by:4 b;
  (* Same name, same underlying instrument: updates aggregate. *)
  check_int "shared count" 5 (Obs.count a);
  check_int "shared count (other handle)" 5 (Obs.count b);
  let other = Obs.counter t "y.hits" in
  check_int "distinct name isolated" 0 (Obs.count other)

let test_kind_mismatch_rejected () =
  let t = Obs.create () in
  ignore (Obs.counter t "m");
  check_bool "gauge over counter raises" true
    (try
       ignore (Obs.gauge t "m");
       false
     with Invalid_argument _ -> true)

let test_gauge_last_and_peak () =
  let t = Obs.create () in
  let g = Obs.gauge t "depth" in
  List.iter (Obs.set_gauge g) [ 3.; 9.; 2. ];
  Alcotest.(check (float 0.)) "last" 2. (Obs.gauge_value g);
  Alcotest.(check (float 0.)) "peak" 9. (Obs.gauge_peak g)

let test_histogram_observations () =
  let t = Obs.create () in
  let h = Obs.histogram t "rt" in
  List.iter (Obs.observe h) [ 0.5; 1.5; 1000. ];
  check_int "count" 3 (Obs.hist_count h);
  Alcotest.(check (float 1e-9)) "sum" 1002. (Obs.hist_sum h)

let test_null_is_inert () =
  let t = Obs.null in
  check_bool "disabled" false (Obs.enabled t);
  let c = Obs.counter t "anything" in
  Obs.incr ~by:1000 c;
  check_int "counter stays 0" 0 (Obs.count c);
  let g = Obs.gauge t "g" in
  Obs.set_gauge g 5.;
  Alcotest.(check (float 0.)) "gauge stays 0" 0. (Obs.gauge_value g);
  let h = Obs.histogram t "h" in
  Obs.observe h 1.;
  check_int "histogram stays empty" 0 (Obs.hist_count h);
  let sp = Obs.begin_span t ~track:"p/t" ~name:"s" ~now:0. in
  Obs.end_span t sp ~now:1.;
  Obs.instant t ~track:"p/t" ~name:"i" ~now:2.;
  check_int "no events" 0 (Obs.event_count t);
  (* Null never raises on name reuse either: interning is a no-op. *)
  ignore (Obs.gauge t "anything")

(* --- Exporters -------------------------------------------------------------- *)

let num_exn = function
  | Json.Num f -> f
  | _ -> Alcotest.fail "expected number"

let member_exn name j =
  match Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "missing member %S" name

let test_metrics_json_shape () =
  let t = Obs.create () in
  Obs.incr ~by:7 (Obs.counter t "a.count");
  Obs.set_gauge (Obs.gauge t "b.depth") 3.;
  Obs.observe (Obs.histogram t "c.rt") 0.25;
  let j = parse_ok (Obs.metrics_json t) in
  let counters = member_exn "counters" j in
  Alcotest.(check (float 0.)) "counter value" 7.
    (num_exn (member_exn "a.count" counters));
  let gauge = member_exn "b.depth" (member_exn "gauges" j) in
  Alcotest.(check (float 0.)) "gauge last" 3. (num_exn (member_exn "last" gauge));
  let hist = member_exn "c.rt" (member_exn "histograms" j) in
  Alcotest.(check (float 0.)) "hist count" 1. (num_exn (member_exn "count" hist));
  Alcotest.(check (float 0.)) "hist mean" 0.25 (num_exn (member_exn "mean" hist));
  (* The single sample lives in the [0.25, 0.5) bucket, and a quantile over
     one observation interpolates to that bucket's upper bound. *)
  List.iter
    (fun q ->
      Alcotest.(check (float 0.)) ("hist " ^ q) 0.5
        (num_exn (member_exn q hist)))
    [ "p50"; "p95"; "p99" ];
  (* Buckets are [upper_bound, count] pairs covering every observation. *)
  (match member_exn "buckets" hist with
  | Json.Arr pairs ->
    let total =
      List.fold_left
        (fun acc p ->
          match p with
          | Json.Arr [ _le; Json.Num n ] -> acc + int_of_float n
          | _ -> Alcotest.fail "bucket is not a pair")
        0 pairs
    in
    check_int "bucket total" 1 total
  | _ -> Alcotest.fail "buckets not an array")

let test_metrics_json_deterministic () =
  let build () =
    let t = Obs.create () in
    (* Intern in one order ... *)
    Obs.incr (Obs.counter t "z.last");
    Obs.incr (Obs.counter t "a.first");
    t
  and build_rev () =
    let t = Obs.create () in
    (* ... or the other: the export sorts by name, so bytes agree. *)
    Obs.incr (Obs.counter t "a.first");
    Obs.incr (Obs.counter t "z.last");
    t
  in
  check_string "insertion order irrelevant"
    (Obs.metrics_json (build ()))
    (Obs.metrics_json (build_rev ()))

let test_trace_json_shape () =
  let t = Obs.create () in
  let sp = Obs.begin_span t ~track:"site-0/refresher" ~name:"apply" ~now:1.5 in
  Obs.end_span ~args:[ ("txn", "42") ] t sp ~now:2.5;
  Obs.instant t ~track:"primary/propagator" ~name:"propagate" ~now:3. ;
  let j = parse_ok (Obs.trace_json t) in
  match member_exn "traceEvents" j with
  | Json.Arr evs ->
    let ph e =
      match Json.member "ph" e with Some (Json.Str s) -> s | _ -> "?"
    in
    let spans = List.filter (fun e -> ph e = "X") evs in
    let instants = List.filter (fun e -> ph e = "i") evs in
    let metas = List.filter (fun e -> ph e = "M") evs in
    check_int "one complete span" 1 (List.length spans);
    check_int "one instant" 1 (List.length instants);
    (* process_name for site-0 and primary + thread_name for both tracks. *)
    check_int "four metadata events" 4 (List.length metas);
    let span = List.hd spans in
    Alcotest.(check (float 0.)) "ts in virtual us" 1.5e6
      (num_exn (member_exn "ts" span));
    Alcotest.(check (float 0.)) "dur in virtual us" 1e6
      (num_exn (member_exn "dur" span));
    (match Json.member "args" span with
    | Some args ->
      (match Json.member "txn" args with
      | Some (Json.Str v) -> check_string "span arg" "42" v
      | _ -> Alcotest.fail "txn arg missing")
    | None -> Alcotest.fail "args missing")
  | _ -> Alcotest.fail "traceEvents not an array"

let test_unclosed_span_dropped () =
  let t = Obs.create () in
  let _open_forever = Obs.begin_span t ~track:"p/t" ~name:"hang" ~now:0. in
  let sp = Obs.begin_span t ~track:"p/t" ~name:"done" ~now:0. in
  Obs.end_span t sp ~now:1.;
  let j = parse_ok (Obs.trace_json t) in
  match member_exn "traceEvents" j with
  | Json.Arr evs ->
    let completes =
      List.filter
        (fun e -> match Json.member "ph" e with
          | Some (Json.Str "X") -> true
          | _ -> false)
        evs
    in
    check_int "only the closed span exports" 1 (List.length completes)
  | _ -> Alcotest.fail "traceEvents not an array"

let test_write_files () =
  let t = Obs.create () in
  Obs.incr (Obs.counter t "k");
  let dir = Filename.temp_file "lsr_obs" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let mf = Filename.concat dir "m.json" and tf = Filename.concat dir "t.json" in
  Obs.write_metrics t ~file:mf;
  Obs.write_trace t ~file:tf;
  let slurp f = In_channel.with_open_bin f In_channel.input_all in
  check_bool "metrics file parses" true (Result.is_ok (Json.parse (slurp mf)));
  check_bool "trace file parses" true (Result.is_ok (Json.parse (slurp tf)));
  Sys.remove mf; Sys.remove tf; Sys.rmdir dir

(* --- Histogram quantiles ----------------------------------------------------- *)

(* The log-scale histogram only keeps bucket counts, so its quantile is a
   within-bucket interpolation. Pin it against the exact nearest-rank
   quantile of the same samples (Lsr_stats.Histogram): both pick the same
   rank-th order statistic, and the estimate must stay inside that sample's
   base-2 bucket, i.e. within a factor of 2 of the exact value. *)
let test_hist_quantile_vs_exact () =
  let t = Obs.create () in
  let h = Obs.histogram t "q.rt" in
  let exact = Lsr_stats.Histogram.create () in
  let x = ref 123456789 in
  for _ = 1 to 500 do
    (* Deterministic LCG spanning several orders of magnitude. *)
    x := ((!x * 1103515245) + 12345) land 0x3FFFFFFF;
    let v = float_of_int ((!x mod 100_000) + 1) /. 100. in
    Obs.observe h v;
    Lsr_stats.Histogram.record exact v
  done;
  List.iter
    (fun q ->
      let est = Obs.hist_quantile h q in
      let exact_v = Lsr_stats.Histogram.quantile exact q in
      check_bool
        (Printf.sprintf "q=%.2f est %g within one bucket of exact %g" q est
           exact_v)
        true
        (est > exact_v /. 2. && est < exact_v *. 2.))
    [ 0.; 0.25; 0.5; 0.9; 0.95; 0.99; 1. ]

let test_hist_quantile_edges () =
  let t = Obs.create () in
  let h = Obs.histogram t "e.rt" in
  Alcotest.(check (float 0.)) "empty" 0. (Obs.hist_quantile h 0.5);
  Obs.observe h (-3.);
  (* Non-positive samples live in the underflow bucket, reported as 0. *)
  Alcotest.(check (float 0.)) "underflow" 0. (Obs.hist_quantile h 1.);
  check_bool "q out of range rejected" true
    (try
       ignore (Obs.hist_quantile h 1.5);
       false
     with Invalid_argument _ -> true)

(* --- Lineage ----------------------------------------------------------------- *)

let test_lineage_null_inert () =
  let l = Lineage.null in
  Lineage.emit l ~txn:1 (Lineage.Primary_commit { commit_ts = 5; updates = 1 });
  Lineage.sample_read l ~site:"s" ~snapshot:5;
  check_bool "not enabled" false (Lineage.enabled l);
  check_int "no events" 0 (Lineage.event_count l);
  check_int "no commits" 0 (Lineage.commit_count l);
  check_bool "no sites" true (Lineage.sites l = [])

let test_lineage_journey () =
  let l = Lineage.create () in
  Lineage.emit l ~txn:7 (Lineage.Primary_commit { commit_ts = 3; updates = 2 });
  Lineage.emit l ~txn:8 (Lineage.Primary_commit { commit_ts = 4; updates = 1 });
  Lineage.emit l ~txn:7 Lineage.Batched;
  Lineage.emit l ~txn:7 (Lineage.Shipped { updates = 2 });
  Lineage.emit l ~site:"sec-0" ~txn:7 Lineage.Enqueued;
  Lineage.emit l ~site:"sec-0" ~txn:7 Lineage.Refresh_started;
  Lineage.emit l ~site:"sec-0" ~txn:7
    (Lineage.Refresh_committed { commit_ts = 3 });
  let j = Lineage.journey l ~txn:7 in
  check_int "journey length" 6 (List.length j);
  (* The default (ordinal) clock stamps strictly increasing times. *)
  let rec mono = function
    | a :: (b :: _ as rest) -> a.Lineage.time < b.Lineage.time && mono rest
    | [ _ ] | [] -> true
  in
  check_bool "monotone times" true (mono j);
  check_bool "txns sorted" true (Lineage.txns l = [ 7; 8 ]);
  check_int "journeys don't mix" 1 (List.length (Lineage.journey l ~txn:8));
  match Lineage.refresh_lags l ~site:"sec-0" with
  | [ lag ] -> check_bool "positive refresh lag" true (lag > 0.)
  | _ -> Alcotest.fail "expected exactly one refresh lag"

let test_lineage_freshness_math () =
  let l = Lineage.create () in
  let clock = ref 0. in
  Lineage.set_clock l (fun () -> !clock);
  clock := 1.;
  Lineage.emit l ~txn:1 (Lineage.Primary_commit { commit_ts = 10; updates = 1 });
  clock := 2.;
  Lineage.emit l ~txn:2 (Lineage.Primary_commit { commit_ts = 20; updates = 1 });
  clock := 5.;
  (* Reflects the first commit only; missed the second; age = now - t(10). *)
  Lineage.sample_read l ~site:"s" ~snapshot:10;
  (* Fully caught up. *)
  Lineage.sample_read l ~site:"s" ~snapshot:20;
  (* Initial snapshot: nothing reflected, age = now. *)
  Lineage.sample_read l ~site:"s" ~snapshot:0;
  match Lineage.freshness_samples l ~site:"s" with
  | [ a; b; c ] ->
    check_int "missed one" 1 a.Lineage.missed;
    Alcotest.(check (float 1e-9)) "age from reflected commit" 4. a.Lineage.age;
    check_int "caught up misses none" 0 b.Lineage.missed;
    Alcotest.(check (float 1e-9)) "caught-up age" 0. b.Lineage.age;
    check_int "initial snapshot misses all" 2 c.Lineage.missed;
    Alcotest.(check (float 1e-9)) "unknown-snapshot age = now" 5. c.Lineage.age
  | _ -> Alcotest.fail "expected three freshness samples"

let test_lineage_json_deterministic () =
  let build () =
    let l = Lineage.create () in
    Lineage.emit l ~txn:1 (Lineage.Primary_commit { commit_ts = 2; updates = 1 });
    Lineage.emit l ~site:"b" ~txn:1 Lineage.Enqueued;
    Lineage.emit l ~site:"a" ~txn:1 Lineage.Enqueued;
    Lineage.sample_read l ~site:"b" ~snapshot:2;
    Lineage.sample_read l ~site:"a" ~snapshot:0;
    Lineage.json l
  in
  let s1 = build () and s2 = build () in
  check_string "same bytes across identical builds" s1 s2;
  let j = parse_ok s1 in
  Alcotest.(check (float 0.)) "commits" 1. (num_exn (member_exn "commits" j));
  (match member_exn "sites" j with
  | Json.Arr (first :: _) ->
    (* Sites are sorted by name for deterministic output. *)
    (match member_exn "site" first with
    | Json.Str s -> check_string "sites sorted" "a" s
    | _ -> Alcotest.fail "site is not a string")
  | _ -> Alcotest.fail "sites not a non-empty array")

let test_write_creates_parents () =
  let base = Filename.temp_file "lsr_obs_deep" "" in
  Sys.remove base;
  let mf = List.fold_left Filename.concat base [ "a"; "b"; "m.json" ] in
  let t = Obs.create () in
  Obs.incr (Obs.counter t "c");
  Obs.write_metrics t ~file:mf;
  check_bool "metrics parents created" true (Sys.file_exists mf);
  let lf = List.fold_left Filename.concat base [ "x"; "lineage.json" ] in
  let l = Lineage.create () in
  Lineage.emit l ~txn:1 (Lineage.Primary_commit { commit_ts = 1; updates = 1 });
  Lineage.write l ~file:lf;
  check_bool "lineage parents created" true (Sys.file_exists lf);
  let slurp f = In_channel.with_open_bin f In_channel.input_all in
  check_bool "lineage file parses" true (Result.is_ok (Json.parse (slurp lf)));
  Sys.remove mf;
  Sys.remove lf;
  Sys.rmdir (Filename.dirname mf);
  Sys.rmdir (Filename.concat base "a");
  Sys.rmdir (Filename.dirname lf);
  Sys.rmdir base

let () =
  Alcotest.run "lsr_obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
          Alcotest.test_case "number formatting" `Quick
            test_json_number_formatting;
          Alcotest.test_case "escape" `Quick test_json_escape;
        ] );
      ( "registry",
        [
          Alcotest.test_case "counter interning" `Quick test_counter_interning;
          Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch_rejected;
          Alcotest.test_case "gauge last/peak" `Quick test_gauge_last_and_peak;
          Alcotest.test_case "histogram" `Quick test_histogram_observations;
          Alcotest.test_case "null is inert" `Quick test_null_is_inert;
        ] );
      ( "export",
        [
          Alcotest.test_case "metrics shape" `Quick test_metrics_json_shape;
          Alcotest.test_case "metrics deterministic" `Quick
            test_metrics_json_deterministic;
          Alcotest.test_case "trace shape" `Quick test_trace_json_shape;
          Alcotest.test_case "unclosed span dropped" `Quick
            test_unclosed_span_dropped;
          Alcotest.test_case "write files" `Quick test_write_files;
          Alcotest.test_case "write creates parents" `Quick
            test_write_creates_parents;
        ] );
      ( "quantiles",
        [
          Alcotest.test_case "vs exact nearest-rank" `Quick
            test_hist_quantile_vs_exact;
          Alcotest.test_case "edge cases" `Quick test_hist_quantile_edges;
        ] );
      ( "lineage",
        [
          Alcotest.test_case "null is inert" `Quick test_lineage_null_inert;
          Alcotest.test_case "journey" `Quick test_lineage_journey;
          Alcotest.test_case "freshness math" `Quick
            test_lineage_freshness_math;
          Alcotest.test_case "json deterministic" `Quick
            test_lineage_json_deterministic;
        ] );
    ]
