(* From snapshot isolation to serializability — the §7 connection.

   Run with: dune exec examples/serializable.exe

   SI admits write skew, so it is not serializable. The paper's related work
   (Fekete et al; Schenkel et al's tickets) shows that deliberately
   introducing write-write conflicts restores serializability on top of a
   strong-SI engine. The One_sr module implements that ticket technique;
   this example provokes the classic on-call-roster write skew, shows the
   serialization-graph checker rejecting it, then repairs it with tickets. *)

open Lsr_storage
open Lsr_core

(* Record a hand-run transaction into a history for the checker. *)
let record h ~session ~first_op ~snapshot ~reads ~writes ~commit_ts =
  History.add h
    {
      History.id = History.fresh_id h;
      session;
      kind = History.Update;
      site = "primary";
      first_op;
      finished = History.tick h;
      snapshot;
      commit_ts;
      reads;
      writes;
      fence = None;
    }

let roster_invariant db =
  let on k = Mvcc.read_at db (Mvcc.latest_commit_ts db) k = Some "on" in
  (if on "oncall:dr-jones" then 1 else 0) + if on "oncall:dr-chen" then 1 else 0

let seed ?history db =
  let first_op = match history with Some h -> History.tick h | None -> 0 in
  let txn = Mvcc.begin_txn db in
  Mvcc.write db txn "oncall:dr-jones" (Some "on");
  Mvcc.write db txn "oncall:dr-chen" (Some "on");
  let writes = Mvcc.pending_writes txn in
  match Mvcc.commit db txn with
  | Mvcc.Committed cts -> (
    match history with
    | Some h ->
      record h ~session:"admin" ~first_op ~snapshot:Timestamp.zero ~reads:[]
        ~writes ~commit_ts:(Some cts)
    | None -> ())
  | Mvcc.Aborted _ -> assert false

(* Each doctor checks that someone else is on call, then signs off. *)
let sign_off db txn ~me ~other =
  let reads =
    [ (me, Mvcc.read db txn me); (other, Mvcc.read db txn other) ]
  in
  if List.for_all (fun (_, v) -> v = Some "on") reads then
    Mvcc.write db txn me (Some "off");
  reads

let without_tickets () =
  print_endline "--- plain snapshot isolation ---";
  let db = Mvcc.create () in
  let h = History.create () in
  seed ~history:h db;
  let snapshot = Mvcc.latest_commit_ts db in
  let first1 = History.tick h in
  let t1 = Mvcc.begin_txn db in
  let t2 = Mvcc.begin_txn db in
  let r1 = sign_off db t1 ~me:"oncall:dr-jones" ~other:"oncall:dr-chen" in
  let r2 = sign_off db t2 ~me:"oncall:dr-chen" ~other:"oncall:dr-jones" in
  let w1 = Mvcc.pending_writes t1 and w2 = Mvcc.pending_writes t2 in
  let c1 = match Mvcc.commit db t1 with Mvcc.Committed c -> Some c | _ -> None in
  let first2 = History.tick h in
  let c2 = match Mvcc.commit db t2 with Mvcc.Committed c -> Some c | _ -> None in
  record h ~session:"jones" ~first_op:first1 ~snapshot ~reads:r1 ~writes:w1
    ~commit_ts:c1;
  record h ~session:"chen" ~first_op:first2 ~snapshot ~reads:r2 ~writes:w2
    ~commit_ts:c2;
  Printf.printf "both sign-offs committed: %b\n" (c1 <> None && c2 <> None);
  Printf.printf "doctors still on call: %d (invariant wanted >= 1)\n"
    (roster_invariant db);
  (match Checker.serialization_cycle h with
  | Some cycle ->
    Printf.printf
      "serialization-graph checker: NOT serializable (cycle through %d \
       transactions)\n"
      (List.length cycle)
  | None -> print_endline "serialization-graph checker: serializable");
  Printf.printf "yet the history is valid SI: %b\n\n"
    (Checker.check_weak_si h = [])

let with_tickets () =
  print_endline "--- snapshot isolation + One_sr tickets ---";
  let db = Mvcc.create () in
  seed db;
  let sign_off_guarded ~me ~other =
    One_sr.run db (fun txn -> ignore (sign_off db txn ~me ~other))
  in
  (* The same race: both doctors try to sign off "concurrently". The guard
     makes the transactions conflict, so one aborts and retries against the
     new state, where the invariant check stops it. *)
  let t1 = Mvcc.begin_txn db in
  let t2 = Mvcc.begin_txn db in
  ignore (sign_off db t1 ~me:"oncall:dr-jones" ~other:"oncall:dr-chen");
  ignore (sign_off db t2 ~me:"oncall:dr-chen" ~other:"oncall:dr-jones");
  One_sr.guard db t1;
  One_sr.guard db t2;
  (match Mvcc.commit db t1 with
  | Mvcc.Committed _ -> print_endline "dr-jones signs off: committed"
  | Mvcc.Aborted _ -> print_endline "dr-jones signs off: aborted");
  (match Mvcc.commit db t2 with
  | Mvcc.Committed _ -> print_endline "dr-chen signs off: committed (BUG!)"
  | Mvcc.Aborted (Mvcc.Write_conflict key) ->
    Printf.printf "dr-chen signs off: aborted by FCW on %s — retrying...\n" key
  | Mvcc.Aborted Mvcc.Forced -> assert false);
  (* The retry re-reads the roster and declines to sign off. *)
  (match sign_off_guarded ~me:"oncall:dr-chen" ~other:"oncall:dr-jones" with
  | Ok ((), _) -> print_endline "dr-chen's retry committed (without signing off)"
  | Error _ -> print_endline "dr-chen's retry exhausted");
  Printf.printf "doctors still on call: %d (invariant preserved)\n"
    (roster_invariant db);
  Printf.printf "guarded commits so far (ticket value): %d\n"
    (One_sr.ticket_value db)

let () =
  without_tickets ();
  with_tickets ();
  print_endline
    "\ntickets trade concurrency for serializability — the exact opposite of\n\
     the paper's direction, which relaxes ordering to gain concurrency and\n\
     then restores just enough of it (per session) to avoid inversions."
