(* Load-balancing reads across replicas: where strong session SI and PCSI
   part ways (§7).

   Run with: dune exec examples/load_balancer.exe

   A session pinned to one secondary gets monotonically fresher snapshots
   for free. The moment a load balancer serves its reads from different
   replicas, two session guarantees become distinguishable:

   - strong session SI also forbids the session's snapshots from moving
     backwards (the read "floor"), so a read routed to a laggier replica
     must wait;
   - PCSI (prefix-consistent SI) only requires a session to see its own
     earlier updates — a read after migration may quietly travel back in
     time, as long as the session's own writes remain visible. *)

open Lsr_core

let update_exn sys c f =
  match System.update sys c f with
  | Ok v -> v
  | Error _ -> failwith "transaction aborted"

(* Build a system whose secondary 0 is fresh and secondary 1 lags: only the
   session's own first update has reached site 1. *)
let scenario guarantee =
  let sys = System.create ~secondaries:2 ~guarantee () in
  let user = System.connect sys ~secondary:0 "user-1" in
  update_exn sys user (fun h -> Handle.put h "cart" "1 item");
  ignore (System.propagate sys);
  ignore (System.refresh_one sys 0);
  (* Apply the cart update at site 1 too, but stop there. *)
  let lagging = System.secondary sys 1 in
  let rec apply_one () =
    match Secondary.refresher_step lagging with
    | Secondary.Started _ -> apply_one ()
    | Secondary.Dispatched app ->
      let rec run () =
        match Secondary.applicator_step lagging app with
        | Secondary.Committed _ -> ()
        | Secondary.Applied _ | Secondary.Waiting_commit -> run ()
        | Secondary.Done -> ()
      in
      run ()
    | Secondary.Aborted _ | Secondary.Blocked_on_pending | Secondary.Idle -> ()
  in
  apply_one ();
  (* Another user's update reaches only the fresh site. *)
  let other = System.connect sys ~secondary:0 "user-2" in
  update_exn sys other (fun h -> Handle.put h "banner" "sale!");
  ignore (System.propagate sys);
  ignore (System.refresh_one sys 0);
  (sys, user)

let run_for guarantee =
  Printf.printf "\n--- %s ---\n" (Session.guarantee_name guarantee);
  let sys, user = scenario guarantee in
  (* First read is served by the fresh replica. *)
  let banner = System.read sys user (fun h -> Handle.get h "banner") in
  Printf.printf "read @ fresh site 0: cart visible, banner = %s\n"
    (Option.value ~default:"<none>" banner);
  (* The load balancer now routes the same session to the laggy replica. *)
  let moved = System.migrate sys user 1 in
  match System.read_nowait sys moved (fun h -> (Handle.get h "cart", Handle.get h "banner")) with
  | Some (cart, banner) ->
    Printf.printf
      "read @ laggy site 1 proceeds: cart = %s, banner = %s%s\n"
      (Option.value ~default:"<none>" cart)
      (Option.value ~default:"<none>" banner)
      (if banner = None then "  <- the snapshot moved backwards!" else "")
  | None ->
    print_endline
      "read @ laggy site 1 would BLOCK: the guarantee forbids the snapshot \
       from moving backwards, so the session waits for refresh"

let () =
  print_endline
    "a session's reads are load-balanced from a fresh replica to a lagging one";
  run_for Session.Strong_session;
  run_for Session.Prefix_consistent;
  run_for Session.Weak;
  print_endline
    "\nstrong session SI buys monotonic snapshots at the price of waiting\n\
     after migration; PCSI keeps read-your-writes but lets time run\n\
     backwards across replicas; weak SI promises nothing. Quantified in\n\
     `bench/main.exe ablate-pcsi`."
