(* Quickstart: a lazy-master replicated database in a few lines.

   Run with: dune exec examples/quickstart.exe

   Demonstrates the core API: create a system, connect a client session,
   run update and read-only transactions, control lazy propagation, and see
   why the paper's strong session SI matters. *)

open Lsr_core

let () =
  (* A primary plus two secondaries, guaranteeing strong session SI. *)
  let sys = System.create ~secondaries:2 ~guarantee:Session.Strong_session () in
  let alice = System.connect sys "alice" in

  (* Update transactions are forwarded to the primary. *)
  (match
     System.update sys alice (fun h ->
         Handle.put h "greeting" "hello, replicas!")
   with
  | Ok () -> print_endline "update committed at the primary"
  | Error _ -> print_endline "update aborted");

  (* Propagation is lazy: the secondaries have not heard about it yet. *)
  Printf.printf "secondary 0 is at seq %d, primary at %d\n"
    (Secondary.seq_dbsec (System.secondary sys 0))
    (Lsr_storage.Mvcc.latest_commit_ts (System.primary_db sys));

  (* Other sessions have no ordering constraint: they read whatever their
     secondary currently has — fast, never waiting, possibly stale. *)
  let bob = System.connect sys "bob" in
  (match System.read_nowait sys bob (fun h -> Handle.get h "greeting") with
  | Some (Some value) -> Printf.printf "bob reads without waiting: %s\n" value
  | Some None ->
    print_endline
      "bob reads without waiting: <nothing> — a stale copy, and that's \
       allowed across sessions"
  | None -> print_endline "bob would have blocked (impossible cross-session)");

  (* But Alice's session guarantee means her next read WAITS until her own
     update is visible — no transaction inversion. *)
  let v = System.read sys alice (fun h -> Handle.get h "greeting") in
  Printf.printf "alice reads back: %s\n" (Option.value ~default:"<nothing>" v);
  Printf.printf "(reads that had to wait for the session guarantee: %d)\n"
    (System.blocked_reads sys);

  (* Drive lazy replication explicitly, then everyone sees everything. *)
  System.pump sys;
  let fresh = System.read sys bob (fun h -> Handle.get h "greeting") in
  Printf.printf "after pump, bob reads: %s\n"
    (Option.value ~default:"<nothing>" fresh);

  (* Every run can be verified against the paper's definitions. *)
  match System.check sys with
  | Ok () -> print_endline "checker: history is strong session SI + complete"
  | Error es -> List.iter print_endline es
