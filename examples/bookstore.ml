(* The paper's motivating scenario (§1): an online bookstore running on a
   lazily replicated database.

   Run with: dune exec examples/bookstore.exe

   A customer submits T_buy (purchase) followed by T_check (order status).
   Under plain weak SI the status check can miss the purchase — a
   transaction inversion. Under strong session SI it cannot, while other
   customers still enjoy fully lazy (non-blocking) reads. The example also
   exercises the relational layer and first-committer-wins on stock
   contention. *)

open Lsr_core
open Lsr_storage

let update_exn sys c f =
  match System.update sys c f with
  | Ok v -> v
  | Error _ -> failwith "transaction aborted"

let seed_catalogue sys =
  let admin = System.connect sys "admin" in
  update_exn sys admin (fun h ->
      Handle.row_put h ~table:"books" ~pk:"sicp"
        [ ("title", Row.Text "Structure and Interpretation"); ("stock", Row.Int 3);
          ("price", Row.Float 45.0) ];
      Handle.row_put h ~table:"books" ~pk:"taocp"
        [ ("title", Row.Text "The Art of Computer Programming");
          ("stock", Row.Int 1); ("price", Row.Float 180.0) ];
      Handle.row_put h ~table:"books" ~pk:"ddia"
        [ ("title", Row.Text "Designing Data-Intensive Applications");
          ("stock", Row.Int 7); ("price", Row.Float 38.5) ]);
  System.pump sys

let buy sys customer ~order ~book =
  update_exn sys customer (fun h ->
      let ok =
        Handle.row_update h ~table:"books" ~pk:book (fun row ->
            Row.set row "stock" (Row.Int (Row.int_exn row "stock" - 1)))
      in
      if not ok then failwith "unknown book";
      Handle.row_put h ~table:"orders" ~pk:order
        [ ("book", Row.Text book); ("status", Row.Text "placed") ])

let check_order sys customer ~order =
  System.read sys customer (fun h ->
      Option.map
        (fun row -> Row.text_exn row "status")
        (Handle.row_get h ~table:"orders" ~pk:order))

let shop guarantee =
  Printf.printf "\n--- bookstore under %s ---\n" (Session.guarantee_name guarantee);
  let sys = System.create ~secondaries:3 ~guarantee () in
  seed_catalogue sys;

  (* The §1 sequence: T_buy then T_check in the same customer session. *)
  let alice = System.connect sys "alice" in
  buy sys alice ~order:"order-1001" ~book:"sicp";
  (match check_order sys alice ~order:"order-1001" with
  | Some status -> Printf.printf "alice checks her order: %s\n" status
  | None ->
    print_endline
      "alice checks her order: NOT FOUND — a transaction inversion! she just \
       bought it");

  (* A different customer browsing concurrently: under strong session SI,
     no waiting (their session has no pending constraint). *)
  let carol = System.connect sys "carol" in
  let in_stock =
    System.read sys carol (fun h ->
        Handle.row_scan h ~table:"books" ~where:(fun row ->
            Row.int_exn row "stock" > 0))
  in
  Printf.printf "carol browses %d titles in stock (lazy read, no waiting)\n"
    (List.length in_stock);

  (* Catch up replication, then audit the run against the SI definitions. *)
  System.pump sys;
  let report = Checker.analyze (System.history sys) in
  Printf.printf
    "audit: weak-SI violations=%d, inversions (any session)=%d, inversions \
     (within a session)=%d\n"
    (List.length report.Checker.weak_si_violations)
    (List.length report.Checker.inversions_all)
    (List.length report.Checker.inversions_in_session);
  Printf.printf "meets its advertised guarantee? %b\n"
    (Checker.satisfies guarantee report)

let stock_contention () =
  print_endline "\n--- first-committer-wins on the last copy of TAOCP ---";
  let sys = System.create ~secondaries:2 ~guarantee:Session.Strong_session () in
  seed_catalogue sys;
  (* Two concurrent purchases of the same single-copy book, expressed
     directly against the primary to get real concurrency. *)
  let db = System.primary_db sys in
  let t1 = Mvcc.begin_txn db in
  let t2 = Mvcc.begin_txn db in
  let books = Table.define db ~name:"books" in
  let buy_in txn =
    match Table.get books txn ~pk:"taocp" with
    | Some row when Row.int_exn row "stock" > 0 ->
      Table.insert books txn ~pk:"taocp"
        (Row.set row "stock" (Row.Int (Row.int_exn row "stock" - 1)))
    | Some _ | None -> failwith "out of stock"
  in
  buy_in t1;
  buy_in t2;
  (match Mvcc.commit db t1 with
  | Mvcc.Committed _ -> print_endline "dave's purchase: committed"
  | Mvcc.Aborted _ -> print_endline "dave's purchase: aborted");
  (match Mvcc.commit db t2 with
  | Mvcc.Committed _ -> print_endline "erin's purchase: committed (BUG!)"
  | Mvcc.Aborted (Mvcc.Write_conflict _) ->
    print_endline
      "erin's purchase: aborted by first-committer-wins — no double-sell"
  | Mvcc.Aborted Mvcc.Forced -> assert false);
  System.pump sys;
  let stock =
    Mvcc.read_at db (Mvcc.latest_commit_ts db) "t:books:taocp"
    |> Option.map (fun s -> Row.int_exn (Row.decode s) "stock")
  in
  Printf.printf "remaining stock: %s\n"
    (match stock with Some n -> string_of_int n | None -> "?")

let () =
  shop Session.Weak;
  shop Session.Strong_session;
  shop Session.Strong;
  stock_contention ()
