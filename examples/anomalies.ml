(* A guided tour of the SQL phenomena P0-P5 (the paper's appendix) against
   the strong-SI storage engine.

   Run with: dune exec examples/anomalies.exe

   For each phenomenon we attempt to provoke it through real transactions on
   the Mvcc engine, transcribe the execution into an Anomaly trace, and let
   the detector deliver the verdict. SI excludes P0-P4; P5 (write skew) is
   the one it admits — the reason SI is weaker than serializability. *)

open Lsr_storage
open Lsr_core

let verdict name detected expected =
  Printf.printf "%-28s %-12s %s\n" name
    (if detected then "OBSERVED" else "prevented")
    (if detected = expected then "(as SI predicts)" else "(UNEXPECTED!)")

(* Trace-building helpers: run ops against the engine AND record them. *)
type ctx = { db : Mvcc.t; mutable trace : Anomaly.op list }

let make_ctx () = { db = Mvcc.create (); trace = [] }
let emit ctx op = ctx.trace <- op :: ctx.trace

let begin_txn ctx =
  let txn = Mvcc.begin_txn ctx.db in
  emit ctx (Anomaly.Begin (Mvcc.txn_id txn));
  txn

let read ctx txn key =
  let value = Mvcc.read ctx.db txn key in
  emit ctx (Anomaly.Read { txn = Mvcc.txn_id txn; key; value });
  value

let write ctx txn key value =
  Mvcc.write ctx.db txn key value;
  emit ctx (Anomaly.Write { txn = Mvcc.txn_id txn; key; value; preds = [] })

let finish ctx txn =
  match Mvcc.commit ctx.db txn with
  | Mvcc.Committed _ ->
    emit ctx (Anomaly.Commit (Mvcc.txn_id txn));
    true
  | Mvcc.Aborted _ ->
    emit ctx (Anomaly.Abort (Mvcc.txn_id txn));
    false

let trace ctx = List.rev ctx.trace

let seed ctx bindings =
  let txn = Mvcc.begin_txn ctx.db in
  List.iter (fun (k, v) -> Mvcc.write ctx.db txn k (Some v)) bindings;
  match Mvcc.commit ctx.db txn with
  | Mvcc.Committed _ -> ()
  | Mvcc.Aborted _ -> assert false

(* P0: write x in T1, overwrite in T2 before T1 ends. Writes are buffered
   per transaction and resolved by first-committer-wins, so both cannot
   commit. *)
let p0 () =
  let ctx = make_ctx () in
  let t1 = begin_txn ctx and t2 = begin_txn ctx in
  write ctx t1 "x" (Some "from-t1");
  write ctx t2 "x" (Some "from-t2");
  ignore (finish ctx t1);
  ignore (finish ctx t2);
  verdict "P0 dirty write" (Anomaly.dirty_writes (trace ctx) <> []) false

(* P1: T2 tries to read T1's uncommitted write. Snapshots only ever contain
   committed versions. *)
let p1 () =
  let ctx = make_ctx () in
  seed ctx [ ("x", "committed") ];
  let t1 = begin_txn ctx and t2 = begin_txn ctx in
  write ctx t1 "x" (Some "dirty");
  ignore (read ctx t2 "x");
  ignore (finish ctx t1);
  ignore (finish ctx t2);
  verdict "P1 dirty read" (Anomaly.dirty_reads (trace ctx) <> []) false

(* P2: T1 reads x twice around T2's committed update. The snapshot pins the
   first value. *)
let p2 () =
  let ctx = make_ctx () in
  seed ctx [ ("x", "v1") ];
  let t1 = begin_txn ctx in
  ignore (read ctx t1 "x");
  let t2 = begin_txn ctx in
  write ctx t2 "x" (Some "v2");
  ignore (finish ctx t2);
  ignore (read ctx t1 "x");
  ignore (finish ctx t1);
  verdict "P2 fuzzy read" (Anomaly.fuzzy_reads (trace ctx) <> []) false

(* P3: a predicate scan repeated around a committed insert. The snapshot
   fixes the result set. *)
let p3 () =
  let ctx = make_ctx () in
  let books = Table.define ctx.db ~name:"books" in
  seed ctx [ ("t:books:a", Row.encode [ ("price", Row.Int 5) ]) ];
  let pred = "price<10" in
  let scan txn =
    let rows = Table.scan books txn ~where:(fun r -> Row.int_exn r "price" < 10) in
    emit ctx
      (Anomaly.Pred_read
         { txn = Mvcc.txn_id txn; pred; result = List.map fst rows });
    rows
  in
  let t1 = begin_txn ctx in
  ignore (scan t1);
  let t2 = begin_txn ctx in
  Table.insert books t2 ~pk:"b" [ ("price", Row.Int 3) ];
  emit ctx
    (Anomaly.Write
       { txn = Mvcc.txn_id t2; key = "t:books:b"; value = Some "row"; preds = [ pred ] });
  ignore (finish ctx t2);
  ignore (scan t1);
  ignore (finish ctx t1);
  verdict "P3 phantom" (Anomaly.phantoms (trace ctx) <> []) false

(* P4: the classic lost update — read, concurrent committed write, write
   back. First-committer-wins aborts the overwriting transaction. *)
let p4 () =
  let ctx = make_ctx () in
  seed ctx [ ("balance", "100") ];
  let t1 = begin_txn ctx in
  let v = Option.get (read ctx t1 "balance") in
  let t2 = begin_txn ctx in
  write ctx t2 "balance" (Some "150");
  ignore (finish ctx t2);
  write ctx t1 "balance" (Some (string_of_int (int_of_string v + 10)));
  let t1_committed = finish ctx t1 in
  verdict "P4 lost update" (Anomaly.lost_updates (trace ctx) <> []) false;
  Printf.printf "    (the second writer %s)\n"
    (if t1_committed then "committed — lost update!" else "was aborted by FCW");
  let final = Mvcc.read_at ctx.db (Mvcc.latest_commit_ts ctx.db) "balance" in
  Printf.printf "    final balance: %s\n" (Option.value ~default:"?" final)

(* P5: write skew — the anomaly SI admits. Two doctors go off call; each
   checks the roster invariant (>= 1 on call) and removes themself.
   Disjoint writes, crossed reads: both commit under SI, violating the
   invariant. *)
let p5 () =
  let ctx = make_ctx () in
  seed ctx [ ("oncall:alice", "yes"); ("oncall:bob", "yes") ];
  let on_call txn =
    (if read ctx txn "oncall:alice" = Some "yes" then 1 else 0)
    + if read ctx txn "oncall:bob" = Some "yes" then 1 else 0
  in
  let t_alice = begin_txn ctx and t_bob = begin_txn ctx in
  if on_call t_alice >= 2 then write ctx t_alice "oncall:alice" (Some "no");
  if on_call t_bob >= 2 then write ctx t_bob "oncall:bob" (Some "no");
  ignore (finish ctx t_alice);
  ignore (finish ctx t_bob);
  verdict "P5 write skew" (Anomaly.write_skews (trace ctx) <> []) true;
  let still_on txn_key =
    Mvcc.read_at ctx.db (Mvcc.latest_commit_ts ctx.db) txn_key = Some "yes"
  in
  Printf.printf "    doctors still on call: %d (invariant wanted >= 1)\n"
    ((if still_on "oncall:alice" then 1 else 0)
    + if still_on "oncall:bob" then 1 else 0)

let () =
  print_endline "SQL phenomena under snapshot isolation (paper appendix A):\n";
  p0 ();
  p1 ();
  p2 ();
  p3 ();
  p4 ();
  p5 ();
  print_endline
    "\nsnapshot isolation excludes P0-P4 but admits P5 — weaker than\n\
     serializability, which is why the paper can exploit it for concurrency."
