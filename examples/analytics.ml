(* Scale-out for read-mostly analytics: the workload the paper's introduction
   motivates (OLAP / e-commerce browsing over lazily replicated copies).

   Run with: dune exec examples/analytics.exe

   Uses the simulated system to show how far the TPC-W "browsing" mix
   (95% read-only) scales as secondaries are added, under each of the three
   algorithms — a fast, small-scale rendition of the paper's Figure 8 that a
   user can run in seconds. *)

open Lsr_core
open Lsr_workload
open Lsr_experiments

let params sites =
  {
    (Params.browsing Params.default) with
    Params.num_secondaries = sites;
    clients_per_secondary = 10;
    warmup = 60.;
    duration = 400.;
  }

let () =
  print_endline "scaling a 95/5 analytics workload (10 clients per secondary)";
  print_endline "throughput = transactions finishing within 3 s, in tps\n";
  let site_counts = [ 1; 2; 4; 8; 16 ] in
  let header =
    "secondaries"
    :: List.map Session.guarantee_name
         [ Session.Strong_session; Session.Weak; Session.Strong ]
  in
  let rows =
    List.map
      (fun sites ->
        let cell guarantee =
          let outcome =
            Sim_system.run (Sim_system.config (params sites) guarantee ~seed:7)
          in
          Printf.sprintf "%.2f" outcome.Sim_system.throughput_fast
        in
        string_of_int sites
        :: List.map cell [ Session.Strong_session; Session.Weak; Session.Strong ])
      site_counts
  in
  print_endline (Lsr_stats.Table_fmt.render ~header rows);
  print_endline
    "\nstrong session SI tracks weak SI: lazy replication scales the read\n\
     workload while sessions still read their own writes. ALG-STRONG-SI pays\n\
     for a total order with most reads waiting out the propagation delay.";
  (* Staleness visibility: how far behind do replicas run? *)
  let o =
    Sim_system.run (Sim_system.config (params 4) Session.Strong_session ~seed:7)
  in
  Printf.printf
    "\nat 4 secondaries: mean replica staleness %.1f s (10 s propagation \
     cycles), %d refresh transactions, %.0f%% primary utilization\n"
    o.Sim_system.refresh_staleness_mean o.Sim_system.refresh_commits
    (100. *. o.Sim_system.primary_utilization)
