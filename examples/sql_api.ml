(* The SQL front end on the replicated system.

   Run with: dune exec examples/sql_api.exe

   Statements route through the session machinery automatically: SELECTs run
   as read-only transactions at the client's secondary (waiting when the
   session guarantee demands it), everything else becomes an update
   transaction at the primary. Indexes declared in the schema are maintained
   transactionally and used for equality lookups.

   There is also an interactive shell: `dune exec bin/lsrepl.exe -- sql`. *)

open Lsr_core
open Lsr_sql

let show client label result =
  match result with
  | Ok r -> Printf.printf "%s> %s\n%s\n\n" client label (Executor.render r)
  | Error e -> Printf.printf "%s> %s\nerror: %s\n\n" client label e

let () =
  let sys =
    System.create ~secondaries:2
      ~schema:[ ("books", [ "genre" ]) ]
      ~guarantee:Session.Strong_session ()
  in
  let admin = System.connect sys "admin" in
  let run client sql = show "sql" sql (Sql.run sys client sql) in

  run admin
    "INSERT INTO books (pk, title, genre, price, stock) VALUES ('sicp', \
     'Structure and Interpretation', 'cs', 45.0, 3)";
  run admin
    "INSERT INTO books (pk, title, genre, price, stock) VALUES ('ddia', \
     'Designing Data-Intensive Applications', 'cs', 38.5, 7)";
  run admin
    "INSERT INTO books (pk, title, genre, price, stock) VALUES ('dune', \
     'Dune', 'scifi', 12.5, 2)";

  (* Another customer session on the other secondary reads lazily: before
     any propagation it sees an empty catalogue, and that is legal across
     sessions. *)
  let visitor = System.connect sys ~secondary:1 "visitor" in
  run visitor "SELECT * FROM books";

  (* The admin session, in contrast, reads its own writes: its SELECT waits
     for replication to catch up (strong session SI). *)
  run admin "SELECT title, price FROM books WHERE genre = 'cs' ORDER BY price";

  (* A purchase: UPDATE routed to the primary. *)
  run admin "UPDATE books SET stock = 2 WHERE pk = 'sicp'";
  run admin "SELECT * FROM books WHERE stock <= 2 ORDER BY stock DESC LIMIT 5";

  System.pump sys;
  run visitor "SELECT title FROM books WHERE genre = 'scifi'";

  run admin "DELETE FROM books WHERE price < 20";
  run admin "SELECT * FROM books";

  (* EXPLAIN shows whether the secondary index answers the query. *)
  run admin "EXPLAIN SELECT * FROM books WHERE genre = 'cs' AND stock > 0";
  run admin "SELECT COUNT(*), AVG(price) FROM books";

  (* Multi-statement transactions: both legs of a transfer commit
     atomically at the primary. *)
  (match
     Sql.run_script sys admin
       [
         "UPDATE books SET stock = 1 WHERE pk = 'sicp'";
         "INSERT INTO orders (pk, book, status) VALUES ('o-1', 'sicp', 'placed')";
       ]
   with
  | Ok results ->
    Printf.printf "sql> BEGIN ... COMMIT (2 statements)
%s

"
      (String.concat "; " (List.map Executor.render results))
  | Error e -> Printf.printf "transaction failed: %s
" e);
  run admin "SELECT status FROM orders WHERE pk = 'o-1'";

  System.pump sys;
  match System.check sys with
  | Ok () -> print_endline "checker: all SQL traffic satisfied strong session SI"
  | Error es -> List.iter print_endline es
