(* lsrepl: command-line front end for the lazy-replication library.

   - `lsrepl simulate`  runs one simulation of the replicated system and
     prints the measured outcome (optionally validating it with the checker);
   - `lsrepl demo`      walks the paper's bookstore scenario under a chosen
     guarantee, showing inversions or their prevention;
   - `lsrepl bottleneck` runs one simulation with full queueing telemetry and
     prints the bottleneck report (resource ranking, per-class residence-time
     breakdown), optionally exporting the monitor's time series;
   - `lsrepl params`    prints the Table 1 parameter set;
   - `lsrepl trace`     runs a small scripted workload and dumps the recorded
     history with the checker's verdict;
   - `lsrepl analyze`   statically analyzes transaction-template workloads for
     SI anomalies (dangerous structures) and session-guarantee needs. *)

open Cmdliner
open Lsr_core
open Lsr_workload
open Lsr_experiments

let guarantee_conv =
  let parse = function
    | "weak" -> Ok Session.Weak
    | "pcsi" -> Ok Session.Prefix_consistent
    | "session" -> Ok Session.Strong_session
    | "strong" -> Ok Session.Strong
    | s ->
      Error
        (`Msg (Printf.sprintf "unknown guarantee %S (weak|pcsi|session|strong)" s))
  in
  let print ppf g =
    Format.pp_print_string ppf
      (match g with
      | Session.Weak -> "weak"
      | Session.Prefix_consistent -> "pcsi"
      | Session.Strong_session -> "session"
      | Session.Strong -> "strong")
  in
  Arg.conv (parse, print)

let guarantee_arg =
  let doc = "Correctness guarantee: weak, pcsi, session or strong." in
  Arg.(value & opt guarantee_conv Session.Strong_session & info [ "guarantee"; "g" ] ~doc)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")

(* --- shared workload options -----------------------------------------------------

   simulate and bottleneck size the simulated system with the same four
   flags and derive the same Params record from them; one term bundle keeps
   the option names, defaults and the params/banner derivation from
   drifting apart between subcommands. *)

type workload_opts = {
  w_secondaries : int;
  w_clients : int;
  w_browsing : bool;
  w_duration : float;
}

let workload_term =
  let secondaries =
    Arg.(value & opt int 5 & info [ "secondaries"; "s" ] ~doc:"Secondary sites.")
  in
  let clients =
    Arg.(value & opt int 20 & info [ "clients"; "c" ] ~doc:"Clients per secondary.")
  in
  let browsing =
    Arg.(value & flag & info [ "browsing" ] ~doc:"Use the 95/5 TPC-W browsing mix.")
  in
  let duration =
    Arg.(value & opt float 600. & info [ "duration"; "d" ] ~doc:"Simulated seconds.")
  in
  Term.(
    const (fun w_secondaries w_clients w_browsing w_duration ->
        { w_secondaries; w_clients; w_browsing; w_duration })
    $ secondaries $ clients $ browsing $ duration)

let workload_params w =
  let base =
    if w.w_browsing then Params.browsing Params.default else Params.default
  in
  {
    base with
    Params.num_secondaries = w.w_secondaries;
    clients_per_secondary = w.w_clients;
    duration = w.w_duration;
    warmup = min (w.w_duration /. 5.) Params.default.Params.warmup;
  }

let workload_mix w = if w.w_browsing then "95/5" else "80/20"

(* --- simulate ------------------------------------------------------------------ *)

let simulate guarantee seed w serial ship validate watchdog open_loop arrival
    session_pool fence flight_file =
  let params = workload_params w in
  let client_mode =
    match open_loop with
    | 0 -> Sim_system.Closed_loop
    | n -> Sim_system.Open_loop { clients = n; arrival; session_pool }
  in
  let flight =
    match flight_file with
    | None -> Lsr_obs.Flight.null
    | Some _ -> Lsr_obs.Flight.create ()
  in
  let cfg =
    {
      (Sim_system.config params guarantee ~seed) with
      Sim_system.record_history = validate;
      watchdog;
      serial_refresh = serial;
      ship_aborted = ship;
      client_mode;
      flight;
      fence =
        (match fence with
        | None -> Sim_system.No_fence
        | Some f -> Sim_system.All_reads f);
    }
  in
  (match client_mode with
  | Sim_system.Closed_loop ->
    Printf.printf "simulating %s: %d secondaries x %d clients, %s mix, %.0fs\n%!"
      (Session.guarantee_name guarantee)
      w.w_secondaries w.w_clients (workload_mix w) w.w_duration
  | Sim_system.Open_loop { clients; arrival; _ } ->
    Printf.printf
      "simulating %s: %d secondaries, open loop (%d modeled clients/site, %s \
       arrivals, %.1f txn/s/site), %s mix, %.0fs\n\
       %!"
      (Session.guarantee_name guarantee)
      w.w_secondaries clients
      (match arrival with
      | Sim_system.Poisson -> "poisson"
      | Sim_system.Mmpp b -> Printf.sprintf "mmpp x%.1f" b)
      (Sim_system.offered_rate params ~clients)
      (workload_mix w) w.w_duration);
  Option.iter
    (fun f ->
      Printf.printf "freshness fence on every read: %s\n%!"
        (Session.fence_to_string f))
    fence;
  let o = Sim_system.run cfg in
  let rows =
    [
      [ "throughput (<=3s)"; Printf.sprintf "%.2f tps" o.Sim_system.throughput_fast ];
      [ "read-only response time"; Printf.sprintf "%.3f s" o.Sim_system.read_rt_mean ];
      [ "read-only p95"; Printf.sprintf "%.3f s" o.Sim_system.read_rt_p95 ];
      [ "update response time"; Printf.sprintf "%.3f s" o.Sim_system.update_rt_mean ];
      [ "update p95"; Printf.sprintf "%.3f s" o.Sim_system.update_rt_p95 ];
      [ "reads completed"; string_of_int o.Sim_system.reads_completed ];
      [ "updates completed"; string_of_int o.Sim_system.updates_completed ];
      [ "update aborts (restarted)"; string_of_int o.Sim_system.aborts ];
      [ "reads blocked on session"; string_of_int o.Sim_system.blocked_reads ];
    ]
    @ (if fence = None then []
       else [ [ "fenced reads"; string_of_int o.Sim_system.fenced_reads ] ])
    @ [
      [ "mean session wait"; Printf.sprintf "%.2f s" o.Sim_system.block_wait_mean ];
      [ "refresh transactions"; string_of_int o.Sim_system.refresh_commits ];
      [ "mean replica staleness"; Printf.sprintf "%.2f s" o.Sim_system.refresh_staleness_mean ];
      [ "wasted refresh operations"; string_of_int o.Sim_system.wasted_ops ];
      [ "primary utilization"; Printf.sprintf "%.1f%%" (100. *. o.Sim_system.primary_utilization) ];
      [ "secondary utilization"; Printf.sprintf "%.1f%%" (100. *. o.Sim_system.secondary_utilization) ];
    ]
  in
  let rows =
    rows
    @
    match o.Sim_system.watchdog_verdict with
    | None -> []
    | Some v ->
      [
        [ "watchdog alerts"; string_of_int v.Lsr_core.Watchdog.alerts_total ];
        [ "watchdog peak state"; string_of_int o.Sim_system.watchdog_peak_state ];
      ]
  in
  Lsr_stats.Table_fmt.print ~title:"outcome" ~header:[ "metric"; "value" ] rows;
  (match o.Sim_system.watchdog_verdict with
  | None -> ()
  | Some v ->
    let open Lsr_core.Watchdog in
    let inversions_at_level =
      match guarantee with
      | Session.Weak -> 0
      | Session.Prefix_consistent -> v.v_inversions_after_update
      | Session.Strong_session -> v.v_inversions_in_session
      | Session.Strong -> v.v_inversions_all
    in
    let clean =
      v.read_mismatches = 0 && v.fence_failures = 0 && inversions_at_level = 0
    in
    Printf.printf
      "\nwatchdog: %s — %d read mismatches, %d fence failures, inversions \
       all/session/after-update %d/%d/%d\n"
      (if clean then "guarantee held throughout the run"
       else "VIOLATIONS DETECTED ONLINE")
      v.read_mismatches v.fence_failures v.v_inversions_all
      v.v_inversions_in_session v.v_inversions_after_update;
    if not clean then begin
      let shown, rest =
        let rec split n = function
          | x :: tl when n > 0 ->
            let s, r = split (n - 1) tl in
            (x :: s, r)
          | l -> ([], List.length l)
        in
        split 10 o.Sim_system.watchdog_alerts
      in
      List.iter (fun a -> Format.printf "  %a@." pp_alert a) shown;
      if rest > 0 then Printf.printf "  ... and %d more retained alerts\n" rest;
      (* The retained log is bounded; say so explicitly when it truncated
         (the per-kind totals above stay exact past the cap). *)
      if v.alerts_dropped > 0 then
        Printf.printf
          "  ... and %d further alerts dropped past the bounded log's cap \
           (counts above remain exact)\n"
          v.alerts_dropped
    end);
  (match o.Sim_system.check_errors with
  | [] ->
    if validate then
      print_endline "\nchecker: run satisfies its guarantee and completeness"
  | es ->
    if validate then begin
      print_endline "\nchecker: VIOLATIONS FOUND";
      List.iter (fun e -> print_endline ("  " ^ e)) es
    end);
  match (flight_file, o.Sim_system.flight_report) with
  | Some file, Some bundle ->
    let oc = open_out file in
    output_string oc (Lsr_obs.Json.to_string bundle);
    output_char oc '\n';
    close_out oc;
    Printf.printf "\nflight recorder: %d events seen, %s — bundle written to %s\n"
      o.Sim_system.flight_events
      (match o.Sim_system.flight_trigger with
      | Some reason -> Printf.sprintf "postmortem triggered by %s" reason
      | None -> "no anomaly (end-of-run window captured)")
      file
  | _ -> ()

let simulate_cmd =
  let serial =
    Arg.(value & flag & info [ "serial-refresh" ] ~doc:"Disable concurrent applicators.")
  in
  let ship =
    Arg.(value & flag & info [ "ship-aborted" ] ~doc:"Eager propagation of aborted work.")
  in
  let validate =
    Arg.(value & flag & info [ "validate" ] ~doc:"Record the history and run the checker.")
  in
  let watchdog =
    let doc =
      "Attach the online consistency watchdog: weak-SI reads, inversion \
       floors and fence claims are checked incrementally as transactions \
       finish, in memory bounded by the active visibility window — so the \
       guarantee is verified even without $(b,--validate)'s full history \
       recording. Violations are reported as typed alerts the moment they \
       happen."
    in
    Arg.(value & flag & info [ "watchdog" ] ~doc)
  in
  let open_loop =
    let doc =
      "Model $(docv) clients per secondary with one aggregated open-loop \
       arrival process per site instead of per-client coroutines (0 = \
       closed loop). Scales to millions of modeled clients."
    in
    Arg.(value & opt int 0 & info [ "open-loop" ] ~docv:"CLIENTS" ~doc)
  in
  let arrival =
    let parse s =
      match String.lowercase_ascii s with
      | "poisson" -> Ok Sim_system.Poisson
      | s -> (
        match Scanf.sscanf_opt s "mmpp:%f" (fun b -> b) with
        | Some b when b >= 1. -> Ok (Sim_system.Mmpp b)
        | Some _ -> Error (`Msg "mmpp burstiness must be >= 1")
        | None ->
          Error (`Msg (Printf.sprintf "unknown arrival process %S" s)))
    in
    let print ppf = function
      | Sim_system.Poisson -> Format.pp_print_string ppf "poisson"
      | Sim_system.Mmpp b -> Format.fprintf ppf "mmpp:%g" b
    in
    let arrival_conv = Arg.conv (parse, print) in
    let doc =
      "Open-loop arrival process: $(b,poisson) or $(b,mmpp:)$(i,B) (bursty \
       two-state MMPP with high/low rate ratio $(i,B), same mean rate)."
    in
    Arg.(
      value & opt arrival_conv Sim_system.Poisson
      & info [ "arrival" ] ~docv:"PROC" ~doc)
  in
  let session_pool =
    let doc =
      "Size of the rotating session-label pool in open-loop mode (0 = \
       min(clients, 4096))."
    in
    Arg.(value & opt int 0 & info [ "session-pool" ] ~docv:"N" ~doc)
  in
  let fence =
    let parse s =
      match Session.fence_of_string s with
      | Ok f -> Ok f
      | Error msg -> Error (`Msg msg)
    in
    let print ppf f = Format.pp_print_string ppf (Session.fence_to_string f) in
    let fence_conv = Arg.conv (parse, print) in
    let doc =
      "Freshness fence carried by every read-only transaction: \
       $(b,exact:)$(i,TS) (snapshot must include primary commit $(i,TS)), \
       $(b,age:)$(i,D) (snapshot at most $(i,D) virtual seconds stale, \
       resolved against the primary commit clock when the read is \
       submitted), or $(b,session) (exactly the strong-session-SI read \
       floor, whatever the ambient guarantee). Fenced reads block on the \
       site's threshold queue until the refresher catches up; with \
       $(b,--validate) the checker audits every fence claim."
    in
    Arg.(value & opt (some fence_conv) None & info [ "fence" ] ~docv:"FENCE" ~doc)
  in
  let flight_file =
    let doc =
      "Attach the bounded flight recorder and write its postmortem bundle \
       to $(docv) after the run. With $(b,--watchdog), the first online \
       alert triggers the capture mid-run; with $(b,--validate), a failed \
       checker battery triggers it at the end; otherwise the bundle holds \
       the end-of-run event window. Inspect the bundle with \
       $(b,lsrepl replay)."
    in
    Arg.(value & opt (some string) None & info [ "flight" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run one simulation of the replicated system")
    Term.(
      const simulate $ guarantee_arg $ seed_arg $ workload_term $ serial $ ship
      $ validate $ watchdog $ open_loop $ arrival $ session_pool $ fence
      $ flight_file)

(* --- bottleneck ----------------------------------------------------------------- *)

let bottleneck guarantee seed w json_file timeseries =
  let params = workload_params w in
  let monitor =
    match timeseries with
    | None -> Monitor.null
    | Some _ -> Monitor.create ~interval:1.0 ()
  in
  let cfg = { (Sim_system.config params guarantee ~seed) with Sim_system.monitor } in
  Printf.printf "simulating %s: %d secondaries x %d clients, %s mix, %.0fs\n\n%!"
    (Session.guarantee_name guarantee)
    w.w_secondaries w.w_clients (workload_mix w) w.w_duration;
  let o = Sim_system.run cfg in
  let report = Bottleneck.analyze params o in
  print_string (Bottleneck.render report);
  Option.iter
    (fun file ->
      Lsr_obs.Timeseries.write (Monitor.series monitor) ~file;
      Printf.printf "\ntimeseries written to %s\n" file)
    timeseries;
  Option.iter
    (fun file ->
      Bottleneck.write_sweep [ { Bottleneck.tag = "run"; report } ] ~file;
      Printf.printf "\nreport written to %s\n" file)
    json_file

let bottleneck_cmd =
  let json_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also write the report as JSON.")
  in
  let timeseries =
    let doc =
      "Attach the 1 virtual-second system monitor and write its time series \
       to $(docv) (.csv extension selects CSV, anything else JSON)."
    in
    Arg.(value & opt (some string) None & info [ "timeseries" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "bottleneck"
       ~doc:"Run one simulation and report where the capacity goes")
    Term.(
      const bottleneck $ guarantee_arg $ seed_arg $ workload_term $ json_file
      $ timeseries)

(* --- demo ----------------------------------------------------------------------- *)

let demo guarantee =
  let sys = System.create ~secondaries:2 ~guarantee () in
  Printf.printf "bookstore demo under %s\n\n" (Session.guarantee_name guarantee);
  let alice = System.connect sys "alice" in
  (match
     System.update sys alice (fun h ->
         Handle.put h "order:1" "placed";
         Handle.put h "stock:sicp" "2")
   with
  | Ok () -> print_endline "T_buy committed at the primary"
  | Error _ -> print_endline "T_buy aborted");
  (match System.read_nowait sys alice (fun h -> Handle.get h "order:1") with
  | Some (Some v) -> Printf.printf "T_check (no waiting): order is %s\n" v
  | Some None ->
    print_endline
      "T_check (no waiting): order NOT VISIBLE — transaction inversion"
  | None ->
    print_endline
      "T_check would block: the session guarantee forbids the stale read");
  let v = System.read sys alice (fun h -> Handle.get h "order:1") in
  Printf.printf "T_check (waiting allowed): order is %s\n"
    (Option.value ~default:"<missing>" v);
  System.pump sys;
  match System.check sys with
  | Ok () -> print_endline "\nchecker: guarantee satisfied"
  | Error es ->
    print_endline "\nchecker report:";
    List.iter (fun e -> print_endline ("  " ^ e)) es

let demo_cmd =
  Cmd.v
    (Cmd.info "demo" ~doc:"Walk the paper's bookstore scenario")
    Term.(const demo $ guarantee_arg)

(* --- params ---------------------------------------------------------------------- *)

let params_cmd =
  Cmd.v
    (Cmd.info "params" ~doc:"Print the Table 1 simulation parameters")
    Term.(const (fun () -> Report.print_table1 Params.default) $ const ())

(* --- sql -------------------------------------------------------------------------- *)

(* A line-oriented SQL shell against an embedded replicated system. Each
   line is one statement; lines starting with '\\' are meta commands. Reads
   stdin to EOF, so scripts pipe straight in. *)
let sql guarantee secondaries schema_spec =
  let schema =
    (* "books:price,stock;orders:status" *)
    if schema_spec = "" then []
    else
      String.split_on_char ';' schema_spec
      |> List.filter (fun s -> s <> "")
      |> List.map (fun entry ->
             match String.split_on_char ':' entry with
             | [ table; fields ] ->
               (table, String.split_on_char ',' fields |> List.filter (( <> ) ""))
             | _ -> failwith (Printf.sprintf "bad schema entry %S" entry))
  in
  let sys = System.create ~secondaries ~schema ~guarantee () in
  let client = ref (System.connect sys "shell") in
  Printf.printf
    "lsrepl sql shell — %s, %d secondaries%s\n\
     statements end at end of line; BEGIN/COMMIT/ROLLBACK group a \
     transaction; meta: \\pump \\connect <session> \\check \\quit\n"
    (Session.guarantee_name guarantee)
    secondaries
    (if schema = [] then "" else ", indexed schema loaded");
  let quit = ref false in
  (* BEGIN ... COMMIT buffers statements into one transaction. *)
  let pending : string list option ref = ref None in
  (try
     while not !quit do
       print_string (match !pending with None -> "sql> " | Some _ -> "sql*> ");
       let line = String.trim (read_line ()) in
       let upper = String.uppercase_ascii line in
       if line <> "" then
         if upper = "BEGIN" then begin
           match !pending with
           | Some _ -> print_endline "error: already inside a transaction"
           | None -> pending := Some []
         end
         else if upper = "ROLLBACK" then begin
           pending := None;
           print_endline "transaction discarded"
         end
         else if upper = "COMMIT" then begin
           match !pending with
           | None -> print_endline "error: no transaction in progress"
           | Some stmts -> (
             pending := None;
             match Lsr_sql.Sql.run_script sys !client (List.rev stmts) with
             | Ok results ->
               List.iter
                 (fun r -> print_endline (Lsr_sql.Executor.render r))
                 results
             | Error msg -> print_endline ("error (rolled back): " ^ msg))
         end
         else if !pending <> None then
           pending :=
             Option.map (fun stmts -> line :: stmts) !pending
         else if String.length line > 0 && line.[0] = '\\' then begin
           match String.split_on_char ' ' line with
           | [ "\\quit" ] | [ "\\q" ] -> quit := true
           | [ "\\pump" ] ->
             System.pump sys;
             print_endline "replicas refreshed"
           | [ "\\connect"; label ] ->
             client := System.connect sys label;
             Printf.printf "session %s @ secondary %d\n" label
               (System.client_secondary !client)
           | [ "\\check" ] -> (
             System.pump sys;
             match System.check sys with
             | Ok () -> print_endline "checker: ok"
             | Error es -> List.iter print_endline es)
           | _ -> print_endline "meta commands: \\pump \\connect <s> \\check \\quit"
         end
         else
           match Lsr_sql.Sql.run sys !client line with
           | Ok result -> print_endline (Lsr_sql.Executor.render result)
           | Error msg -> print_endline ("error: " ^ msg)
     done
   with End_of_file -> ());
  System.pump sys;
  match System.check sys with
  | Ok () -> ()
  | Error es ->
    print_endline "final checker report:";
    List.iter print_endline es

let sql_cmd =
  let secondaries =
    Arg.(value & opt int 2 & info [ "secondaries"; "s" ] ~doc:"Secondary sites.")
  in
  let schema =
    let doc = "Secondary indexes, e.g. \"books:price,stock;orders:status\"." in
    Arg.(value & opt string "" & info [ "schema" ] ~doc)
  in
  Cmd.v
    (Cmd.info "sql" ~doc:"Interactive SQL shell on a replicated system")
    Term.(const sql $ guarantee_arg $ secondaries $ schema)

(* --- analyze --------------------------------------------------------------------- *)

let analyze guarantee workload_names json_file allowlist_file plan shards =
  let all = Lsr_analysis.Builtin.workloads () in
  let selected =
    match workload_names with
    | [] -> all
    | names ->
      List.map
        (fun name ->
          match Lsr_analysis.Builtin.find name with
          | Some ts -> (name, ts)
          | None ->
            failwith
              (Printf.sprintf "unknown workload %S (have: %s)" name
                 (String.concat ", " (List.map fst all))))
        names
  in
  let reports =
    List.map
      (fun (name, templates) ->
        Lsr_analysis.Analyzer.run ~guarantee ~workload:name templates)
      selected
  in
  let plans =
    if not plan then []
    else
      List.map
        (fun (name, templates) ->
          Lsr_analysis.Plan.infer ~shards ~workload:name templates)
        selected
  in
  if plan then
    List.iteri
      (fun i p ->
        if i > 0 then print_newline ();
        print_string (Lsr_analysis.Plan.render p))
      plans
  else
    List.iteri
      (fun i r ->
        if i > 0 then print_newline ();
        print_string (Lsr_analysis.Analyzer.render r))
      reports;
  (match json_file with
  | None -> ()
  | Some file ->
    let json =
      if plan then Lsr_obs.Json.Arr (List.map Lsr_analysis.Plan.to_json plans)
      else Lsr_obs.Json.Arr (List.map Lsr_analysis.Analyzer.to_json reports)
    in
    let text = Lsr_obs.Json.to_string json in
    let oc = open_out file in
    output_string oc text;
    output_char oc '\n';
    close_out oc;
    (* Re-parse what we wrote: the exporter contract used across the repo. *)
    (match Lsr_obs.Json.parse text with
    | Ok _ -> Printf.printf "\nreport written to %s\n" file
    | Error e -> failwith (Printf.sprintf "emitted invalid JSON (%s)" e)));
  match allowlist_file with
  | None -> ()
  | Some file ->
    let allowed =
      In_channel.with_open_text file In_channel.input_lines
      |> List.map String.trim
      |> List.filter (fun l -> l <> "" && not (String.length l > 0 && l.[0] = '#'))
    in
    let ids = List.concat_map Lsr_analysis.Analyzer.dangerous_ids reports in
    let unexplained = List.filter (fun id -> not (List.mem id allowed)) ids in
    let stale = List.filter (fun id -> not (List.mem id ids)) allowed in
    List.iter
      (fun id -> Printf.printf "note: allowlist entry %s no longer reported\n" id)
      stale;
    if unexplained = [] then
      Printf.printf "\nallowlist: all %d dangerous structure(s) explained\n"
        (List.length ids)
    else begin
      print_newline ();
      List.iter
        (fun id -> Printf.printf "UNEXPLAINED dangerous structure: %s\n" id)
        unexplained;
      Printf.printf
        "%d dangerous structure(s) not covered by %s — review the report \
         above and either fix the workload or allowlist them\n"
        (List.length unexplained) file;
      exit 1
    end

let analyze_cmd =
  let guarantee =
    (* The analysis baseline is plain weak SI — the point is to show which
       flags a stronger guarantee would prevent. *)
    let doc = "Guarantee to judge session flags against (default weak)." in
    Arg.(value & opt guarantee_conv Session.Weak & info [ "guarantee"; "g" ] ~doc)
  in
  let workloads =
    let doc =
      "Built-in workloads to analyze (default: all). Known: tpcw, \
       write_skew, disjoint, txn_gen, fence_mix."
    in
    Arg.(value & pos_all string [] & info [] ~docv:"WORKLOAD" ~doc)
  in
  let json_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also write the report as JSON.")
  in
  let allowlist_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "allowlist" ] ~docv:"FILE"
          ~doc:
            "File of known-benign dangerous-structure ids (one per line, # \
             comments). Exit 1 if the analysis reports any id not listed.")
  in
  let plan =
    let doc =
      "Emit the workload plan instead of the raw analysis: minimal \
       per-template guarantee/fence assignment and the shard routing plan."
    in
    Arg.(value & flag & info [ "plan" ] ~doc)
  in
  let shards =
    let doc = "Shard budget for the partition analysis (with --plan)." in
    Arg.(value & opt int 2 & info [ "shards" ] ~docv:"N" ~doc)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Statically analyze template workloads for SI anomalies")
    Term.(
      const analyze $ guarantee $ workloads $ json_file $ allowlist_file $ plan
      $ shards)

(* --- trace ----------------------------------------------------------------------- *)

let trace guarantee seed steps txn_id =
  let lineage = Lsr_obs.Lineage.create () in
  let sys = System.create ~secondaries:2 ~guarantee ~lineage () in
  let clients = Array.init 3 (fun i -> System.connect sys (Printf.sprintf "c%d" i)) in
  let rng = Lsr_sim.Rng.create seed in
  for _ = 1 to steps do
    let c = clients.(Lsr_sim.Rng.uniform rng ~lo:0 ~hi:2) in
    let key = Printf.sprintf "k%d" (Lsr_sim.Rng.uniform rng ~lo:0 ~hi:5) in
    match Lsr_sim.Rng.uniform rng ~lo:0 ~hi:3 with
    | 0 ->
      ignore
        (System.update sys c (fun h ->
             Handle.put h key (string_of_int (Lsr_sim.Rng.uniform rng ~lo:0 ~hi:99))))
    | 1 | 2 -> ignore (System.read sys c (fun h -> Handle.get h key))
    | _ -> System.pump sys
  done;
  System.pump sys;
  let traced () =
    match Lsr_obs.Lineage.txns lineage with
    | [] -> "(none this run)"
    | ids -> String.concat ", " (List.map string_of_int ids)
  in
  match txn_id with
  | Some id -> (
    match Lsr_obs.Lineage.journey lineage ~txn:id with
    | [] ->
      Printf.printf
        "error: unknown-transaction: no causal journey recorded for \
         transaction %d\n\
         traced update transactions: %s\n\
         (only committed update transactions leave a journey; read-only and \
         aborted transactions are never traced)\n"
        id (traced ());
      exit 1
    | events ->
      Printf.printf "causal journey of update transaction %d:\n" id;
      List.iter
        (fun ev -> Format.printf "  %a@." Lsr_obs.Lineage.pp_event ev)
        events)
  | None ->
    print_endline "recorded history (completion order):";
    List.iter
      (fun txn -> Format.printf "  %a@." History.pp_txn txn)
      (History.transactions (System.history sys));
    let report = Checker.analyze (System.history sys) in
    Printf.printf
      "\nweak-SI violations: %d\ninversions (all): %d\ninversions (in-session): %d\n"
      (List.length report.Checker.weak_si_violations)
      (List.length report.Checker.inversions_all)
      (List.length report.Checker.inversions_in_session);
    List.iter
      (fun inv -> Format.printf "  %a@." Checker.pp_inversion inv)
      report.Checker.inversions_in_session;
    Printf.printf "guarantee %s satisfied: %b\n"
      (Session.guarantee_name guarantee)
      (Checker.satisfies guarantee report);
    Printf.printf
      "\ntraced update transactions: %s\n\
       (rerun as `lsrepl trace <id>` with the same seed to print one \
       transaction's causal journey)\n"
      (traced ())

let trace_cmd =
  let steps =
    Arg.(value & opt int 25 & info [ "steps"; "n" ] ~doc:"Workload steps.")
  in
  let txn_id =
    let doc =
      "Primary transaction id to trace: print that transaction's causal \
       journey (primary commit, shipping, per-site refresh) instead of the \
       full history."
    in
    Arg.(value & pos 0 (some int) None & info [] ~docv:"TXN-ID" ~doc)
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Run a random workload and dump the checked history")
    Term.(const trace $ guarantee_arg $ seed_arg $ steps $ txn_id)

(* --- replay ---------------------------------------------------------------------- *)

(* Time-travel debugging over a committed postmortem bundle: the default
   view prints the capture header and the witness interleaving of the
   implicated transactions; --seek/--txn/--at reconstruct the window at any
   instant; --diff audits two bundles for determinism. Everything here is a
   pure function of the bundle files, so outputs golden cleanly. *)
let replay bundle_file diff_file seek txn at limit =
  let open Lsr_obs.Flight in
  let load file =
    match load_bundle ~file with
    | Ok b -> b
    | Error e ->
      Printf.eprintf "error: %s: %s\n" file e;
      exit 1
  in
  let b = load bundle_file in
  let print_events ?(label_omitted = "earlier") evs =
    let total = List.length evs in
    let evs =
      if limit > 0 && total > limit then begin
        Printf.printf "  (... %d %s events omitted; raise --limit to see them)\n"
          (total - limit) label_omitted;
        List.filteri (fun i _ -> i >= total - limit) evs
      end
      else evs
    in
    List.iter (fun e -> Format.printf "  %a@." pp_event e) evs
  in
  match diff_file with
  | Some other ->
    let a, bb = (b, load other) in
    (match diff a bb with
    | None ->
      Printf.printf
        "no divergence: both bundles retain the same %d-event window\n"
        (Array.length a.window)
    | Some (i, ea, eb) ->
      Printf.printf "FIRST DIVERGENCE at window index %d:\n" i;
      let side tag = function
        | Some e -> Format.printf "  %s: %a@." tag pp_event e
        | None -> Printf.printf "  %s: <window ended>\n" tag
      in
      side "A" ea;
      side "B" eb;
      exit 1)
  | None -> (
    match (at, seek, txn) with
    | Some vt, _, _ ->
      Printf.printf "visible snapshot horizons at vt=%.6f:\n" vt;
      List.iter
        (fun (site, h) ->
          if h < 0 then Printf.printf "  %-16s (unknown before the window)\n" site
          else Printf.printf "  %-16s %d\n" site h)
        (horizons_at b ~vt)
    | None, Some vt, _ ->
      Printf.printf "window events up to vt=%.6f:\n" vt;
      print_events (events_until b ~vt)
    | None, None, Some id ->
      Printf.printf "window events touching transaction %d:\n" id;
      print_events (txn_events b ~id)
    | None, None, None ->
      Printf.printf "flight bundle v%d — trigger: %s%s\n" b.version b.reason
        (if b.detail = "" then "" else "\n  " ^ b.detail);
      Printf.printf
        "captured at vt=%.6f: %d-event window, %d earlier events evicted, %d \
         primary commits over the run\n"
        b.at (Array.length b.window) b.dropped b.commits;
      Printf.printf "implicated transactions: %s\n"
        (match b.implicated with
        | [] -> "(none)"
        | ids -> String.concat ", " (List.map string_of_int ids));
      print_endline "visibility horizons at capture:";
      List.iter (fun (site, h) -> Printf.printf "  %-16s %d\n" site h) b.horizons;
      List.iter
        (fun (id, journey) ->
          Printf.printf "lineage journey of txn %d:\n" id;
          match journey with
          | Lsr_obs.Json.Arr evs ->
            List.iter
              (fun ev -> print_endline ("  " ^ Lsr_obs.Json.to_string ev))
              evs
          | j -> print_endline ("  " ^ Lsr_obs.Json.to_string j))
        b.journeys;
      (match witness_events b with
      | [] ->
        print_endline "event window (oldest first):";
        print_events (Array.to_list b.window)
      | evs ->
        print_endline
          "witness interleaving of the implicated transactions (oldest first):";
        print_events evs))

let replay_cmd =
  let bundle_file =
    let doc = "Postmortem bundle written by simulate --flight or the bench." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BUNDLE" ~doc)
  in
  let diff_file =
    let doc =
      "Determinism audit: compare $(i,BUNDLE) against $(docv) and report \
       the first divergence between their event windows (exit 1), or that \
       none exists. Two bundles from the same seed must not diverge."
    in
    Arg.(value & opt (some string) None & info [ "diff" ] ~docv:"OTHER" ~doc)
  in
  let seek =
    let doc = "Print the window events up to virtual time $(docv)." in
    Arg.(value & opt (some float) None & info [ "seek" ] ~docv:"VT" ~doc)
  in
  let txn =
    let doc =
      "Print the window events touching transaction $(docv) (matched as \
       MVCC id or history id)."
    in
    Arg.(value & opt (some int) None & info [ "txn" ] ~docv:"ID" ~doc)
  in
  let at =
    let doc =
      "Print each site's visible snapshot horizon at virtual time $(docv), \
       reconstructed from the window (takes precedence over \
       --seek/--txn)."
    in
    Arg.(value & opt (some float) None & info [ "at" ] ~docv:"VT" ~doc)
  in
  let limit =
    let doc = "Print at most the last $(docv) events per listing (0 = all)." in
    Arg.(value & opt int 0 & info [ "limit" ] ~docv:"N" ~doc)
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Time-travel through a flight recorder postmortem bundle")
    Term.(const replay $ bundle_file $ diff_file $ seek $ txn $ at $ limit)

let () =
  let info =
    Cmd.info "lsrepl"
      ~doc:"lazy database replication with snapshot isolation (VLDB 2006)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            simulate_cmd; bottleneck_cmd; demo_cmd; params_cmd; trace_cmd;
            sql_cmd; analyze_cmd; replay_cmd;
          ]))
