(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (Table 1, Figures 2-8), runs the ablation studies from
   DESIGN.md, and provides Bechamel microbenchmarks of the substrates.

   Default invocation (`dune exec bench/main.exe`) runs everything at paper
   scale (35-minute simulated runs, 5 replications per point). Use --quick
   for a shape-preserving fast pass. *)

open Lsr_experiments
module Obs = Lsr_obs.Obs
module Obs_json = Lsr_obs.Json
module Lineage = Lsr_obs.Lineage

let opts ~quick ~seed ~verbose ~obs ~lineage ~monitor ~watchdog ~flight
    ~on_outcome =
  {
    Figures.quick;
    seed;
    progress =
      (if verbose then fun msg -> Printf.eprintf "  [run] %s\n%!" msg
       else ignore);
    base_params = None;
    obs;
    lineage;
    monitor;
    watchdog;
    flight;
    on_outcome;
  }

let emit ~csv figure =
  Report.print_figure figure;
  match csv with
  | None -> ()
  | Some dir ->
    let path = Report.write_csv ~dir figure in
    Printf.printf "(csv written to %s)\n%!" path

let run_table1 ~quick = Report.print_table1 (Figures.params_for ~quick)

let run_fig234 opts ~csv ~wanted =
  let f2, f3, f4 = Figures.fig2_3_4 opts in
  List.iter
    (fun (id, figure) -> if List.mem id wanted then emit ~csv figure)
    [ ("fig2", f2); ("fig3", f3); ("fig4", f4) ]

let run_fig567 opts ~csv ~wanted =
  let f5, f6, f7 = Figures.fig5_6_7 opts in
  List.iter
    (fun (id, figure) -> if List.mem id wanted then emit ~csv figure)
    [ ("fig5", f5); ("fig6", f6); ("fig7", f7) ]

let run_fig8 opts ~csv = emit ~csv (Figures.fig8 opts)

let run_ablations opts ~csv ~wanted =
  if List.mem "ablate-propagation" wanted then
    emit ~csv (Figures.ablate_propagation opts);
  if List.mem "ablate-applicators" wanted then
    emit ~csv (Figures.ablate_applicators opts);
  if List.mem "ablate-pcsi" wanted then emit ~csv (Figures.ablate_pcsi opts);
  if List.mem "ablate-delay" wanted then emit ~csv (Figures.ablate_delay opts);
  (* Extension study; run explicitly (kept out of `all` so the default
     output matches the paper's evaluation set). *)
  if List.mem "ablate-contention" wanted then
    emit ~csv (Figures.ablate_contention opts)

(* --- Fault-injection scenarios (docs/FAULTS.md) ----------------------------- *)

(* Runs the simulated system with the propagation channels subjected to
   increasingly hostile networks and prints the per-channel counters next to
   the performance numbers: the protocol must keep its guarantees (check
   errors = 0) while the retransmission layer pays for the faults in
   staleness and queue depth. *)
let run_faults ~quick ~seed ~obs ~lineage ~monitor ~watchdog ~flight
    ~on_outcome =
  let open Lsr_workload in
  let params =
    {
      Params.default with
      Params.num_secondaries = 3;
      clients_per_secondary = 5;
      warmup = 60.;
      duration = (if quick then 300. else 900.);
    }
  in
  let scenarios =
    [
      ("reliable", Some Lsr_faults.Channel.reliable);
      ("mild", Some Lsr_faults.Channel.default);
      ("chaos", Some Lsr_faults.Channel.chaos);
    ]
  in
  let rows =
    List.map
      (fun (name, faults) ->
        let cfg =
          {
            (Sim_system.config params Lsr_core.Session.Strong_session ~seed) with
            Sim_system.record_history = true;
            watchdog;
            faults;
            obs;
            lineage;
            monitor;
            flight;
          }
        in
        let o = Sim_system.run cfg in
        on_outcome ("faults " ^ name) cfg o;
        [
          name;
          Printf.sprintf "%.2f" o.Sim_system.throughput_fast;
          Printf.sprintf "%.3f" o.Sim_system.refresh_staleness_mean;
          string_of_int o.Sim_system.channel_dropped;
          string_of_int o.Sim_system.channel_retransmitted;
          string_of_int o.Sim_system.channel_duplicated;
          string_of_int o.Sim_system.channel_max_queue;
          string_of_int (List.length o.Sim_system.check_errors);
        ])
      scenarios
  in
  Lsr_stats.Table_fmt.print
    ~title:"Fault injection on the propagation channels (strong session SI)"
    ~header:
      [
        "scenario"; "tput"; "staleness"; "dropped"; "retrans"; "dup";
        "max queue"; "check errs";
      ]
    rows

(* --- Smoke run (CI observability check) ------------------------------------- *)

(* A deliberately tiny deterministic run whose only purpose is to exercise
   the whole observability pipeline: every span phase fires, the counters
   move, and --trace/--metrics produce loadable files in a couple of
   seconds. Used by the `runtest` smoke rule. *)
let run_smoke ~seed ~obs ~lineage ~monitor ~watchdog ~flight ~on_outcome =
  let open Lsr_workload in
  let params =
    {
      Params.default with
      Params.num_secondaries = 2;
      clients_per_secondary = 3;
      warmup = 5.;
      duration = 60.;
    }
  in
  let cfg =
    {
      (Sim_system.config params Lsr_core.Session.Strong_session ~seed) with
      Sim_system.obs;
      lineage;
      monitor;
      watchdog;
      flight;
    }
  in
  let o = Sim_system.run cfg in
  on_outcome "smoke" cfg o;
  Printf.printf
    "smoke: tput=%.2f reads=%d updates=%d refresh_commits=%d events=%d \
     lineage_events=%d\n%!"
    o.Sim_system.throughput_fast o.Sim_system.reads_completed
    o.Sim_system.updates_completed o.Sim_system.refresh_commits
    (Obs.event_count obs)
    (Lineage.event_count lineage);
  match o.Sim_system.watchdog_verdict with
  | None -> ()
  | Some v ->
    Printf.printf
      "smoke watchdog: alerts=%d inversions=%d/%d/%d mismatches=%d \
       fence_failures=%d peak_state=%d\n%!"
      v.Lsr_core.Watchdog.alerts_total v.Lsr_core.Watchdog.v_inversions_all
      v.Lsr_core.Watchdog.v_inversions_in_session
      v.Lsr_core.Watchdog.v_inversions_after_update
      v.Lsr_core.Watchdog.read_mismatches v.Lsr_core.Watchdog.fence_failures
      o.Sim_system.watchdog_peak_state

(* --- Simulator scaling bench (BENCH_7.json) --------------------------------- *)

(* The per-PR perf trajectory: paired open-loop vs closed-loop runs at equal
   offered load plus a million-client showcase with the full checker
   battery. Writes the machine-readable report to --bench-out and validates
   it against the schema the tier-2 smoke test enforces. *)
let run_perf ~quick ~seed ~verbose ~bench_out =
  let progress =
    if verbose then fun msg -> Printf.eprintf "  [perf] %s\n%!" msg else ignore
  in
  let report = Perf_bench.run ~progress ~quick ~seed () in
  Perf_bench.print report;
  Perf_bench.write report ~file:bench_out;
  let text = In_channel.with_open_bin bench_out In_channel.input_all in
  match Result.bind (Obs_json.parse text) Perf_bench.validate with
  | Ok () -> Printf.printf "(perf report written to %s)\n%!" bench_out
  | Error e ->
    Printf.eprintf "internal error: %s fails its own schema: %s\n%!" bench_out e;
    exit 2

(* --- Static SI-anomaly analysis -------------------------------------------- *)

(* Summarizes the static analyzer's verdict on every built-in template
   workload — how many dangerous structures and session flags each one has
   and the weakest guarantee that makes it safe. With --csv DIR the full
   reports land in DIR/analysis.json (validated by re-parsing, like every
   other exporter). *)
let run_analysis ~csv =
  let reports =
    List.map
      (fun (name, templates) ->
        Lsr_analysis.Analyzer.run ~workload:name templates)
      (Lsr_analysis.Builtin.workloads ())
  in
  let rows =
    List.map
      (fun (r : Lsr_analysis.Analyzer.report) ->
        let open Lsr_analysis in
        [
          r.Analyzer.workload;
          string_of_int (List.length r.Analyzer.sdg.Sdg.templates);
          string_of_int (List.length r.Analyzer.sdg.Sdg.edges);
          string_of_int (List.length r.Analyzer.dangerous);
          string_of_int (List.length r.Analyzer.session_flags);
          Lsr_core.Session.guarantee_name
            (Session_pass.needed_guarantee r.Analyzer.session_flags);
          (if r.Analyzer.dangerous = [] then "serializable under SI"
           else "write skew possible");
        ])
      reports
  in
  Lsr_stats.Table_fmt.print
    ~title:"Static SI-anomaly analysis of the built-in workloads"
    ~header:
      [
        "workload"; "templates"; "edges"; "dangerous"; "session flags";
        "needs"; "verdict";
      ]
    rows;
  (* The planner's summary over the same workloads: what the mixed
     per-template assignment costs vs pricing everything at the uniform
     weakest-safe guarantee, and how the 2-shard partition routes updates. *)
  let plans =
    List.map
      (fun (name, templates) ->
        Lsr_analysis.Plan.infer ~workload:name templates)
      (Lsr_analysis.Builtin.workloads ())
  in
  let plan_rows =
    List.map
      (fun (p : Lsr_analysis.Plan.t) ->
        let open Lsr_analysis in
        let fenced =
          List.length
            (List.filter
               (fun (a : Plan.assignment) -> a.Plan.fence <> None)
               p.Plan.assignments)
        in
        [
          p.Plan.workload;
          Lsr_core.Session.guarantee_name p.Plan.uniform;
          string_of_int (Plan.uniform_cost p);
          string_of_int (Plan.mixed_cost p);
          string_of_int fenced;
          string_of_int (List.length p.Plan.residual);
          string_of_int (Partition.shard_count p.Plan.partition);
          string_of_int (List.length p.Plan.partition.Partition.cross_shard_updates);
        ])
      plans
  in
  Lsr_stats.Table_fmt.print
    ~title:"Workload plans (mixed per-template assignment, 2-shard partition)"
    ~header:
      [
        "workload"; "uniform needs"; "uniform cost"; "mixed cost";
        "fenced templates"; "residual"; "shards"; "cross-shard updates";
      ]
    plan_rows;
  match csv with
  | None -> ()
  | Some dir ->
    Lsr_obs.Fsutil.mkdir_p dir;
    let write_json file json =
      let file = Filename.concat dir file in
      let text = Obs_json.to_string json in
      let oc = open_out file in
      output_string oc text;
      output_char oc '\n';
      close_out oc;
      match Obs_json.parse text with
      | Ok _ -> Printf.printf "(analysis written to %s)\n%!" file
      | Error e ->
        Printf.eprintf "internal error: %s is invalid JSON: %s\n%!" file e;
        exit 2
    in
    write_json "analysis.json"
      (Obs_json.Arr (List.map Lsr_analysis.Analyzer.to_json reports));
    write_json "plans.json"
      (Obs_json.Arr (List.map Lsr_analysis.Plan.to_json plans))

(* --- Bechamel microbenchmarks ---------------------------------------------- *)

let micro_tests () =
  let open Bechamel in
  let open Lsr_storage in
  (* A pre-populated database for read benchmarks. *)
  let populated () =
    let db = Mvcc.create () in
    let txn = Mvcc.begin_txn db in
    for i = 0 to 9_999 do
      Mvcc.write db txn (Printf.sprintf "key:%05d" i) (Some (string_of_int i))
    done;
    (match Mvcc.commit db txn with
    | Mvcc.Committed _ -> ()
    | Mvcc.Aborted _ -> assert false);
    db
  in
  let read_db = populated () in
  let mvcc_commit =
    Test.make ~name:"mvcc/txn-10-writes"
      (Staged.stage (fun () ->
           let db = Mvcc.create () in
           let txn = Mvcc.begin_txn db in
           for i = 0 to 9 do
             Mvcc.write db txn (string_of_int i) (Some "v")
           done;
           Mvcc.commit db txn))
  in
  let mvcc_read =
    let counter = ref 0 in
    Test.make ~name:"mvcc/snapshot-read"
      (Staged.stage (fun () ->
           incr counter;
           let txn = Mvcc.begin_txn read_db in
           let v =
             Mvcc.read read_db txn
               (Printf.sprintf "key:%05d" (!counter mod 10_000))
           in
           Mvcc.end_read read_db txn;
           v))
  in
  let row_codec =
    let row =
      [
        ("id", Row.Int 42);
        ("title", Row.Text "the art of lazy replication");
        ("price", Row.Float 30.5);
        ("in_stock", Row.Bool true);
      ]
    in
    Test.make ~name:"row/encode-decode"
      (Staged.stage (fun () -> Row.decode (Row.encode row)))
  in
  let replication_pipeline =
    Test.make ~name:"replication/one-txn-end-to-end"
      (Staged.stage (fun () ->
           let open Lsr_core in
           let sys = System.create ~secondaries:1 ~guarantee:Session.Weak () in
           let c = System.connect sys "bench" in
           (match System.update sys c (fun h -> Handle.put h "x" "1") with
           | Ok () -> ()
           | Error _ -> assert false);
           System.pump sys))
  in
  let propagation_poll =
    let open Lsr_core in
    let primary = Primary.create () in
    let prop = Propagation.create ~from:0 (Primary.wal primary) in
    Test.make ~name:"replication/update+poll"
      (Staged.stage (fun () ->
           (match
              Primary.execute primary (fun db txn ->
                  Mvcc.write db txn "k" (Some "v"))
            with
           | Primary.Committed _ -> ()
           | Primary.Aborted _ -> assert false);
           Propagation.poll prop))
  in
  let checker_bench =
    let open Lsr_core in
    (* A synthetic 1000-transaction history to analyze. *)
    let history = History.create () in
    for i = 1 to 1000 do
      let first_op = History.tick history in
      let finished = History.tick history in
      History.add history
        {
          History.id = History.fresh_id history;
          session = Printf.sprintf "s%d" (i mod 20);
          kind = (if i mod 5 = 0 then History.Update else History.Read_only);
          site = "synthetic";
          first_op;
          finished;
          snapshot = i - (i mod 3);
          commit_ts = (if i mod 5 = 0 then Some i else None);
          reads = [];
          writes = [];
          fence = None;
        }
    done;
    Test.make ~name:"checker/inversions-1k-txns"
      (Staged.stage (fun () -> Checker.inversions history))
  in
  let sim_engine =
    Test.make ~name:"sim/1k-events"
      (Staged.stage (fun () ->
           let open Lsr_sim in
           let eng = Engine.create () in
           for i = 1 to 1000 do
             ignore (Engine.schedule eng ~delay:(float_of_int i) (fun () -> ()))
           done;
           Engine.run eng))
  in
  let sim_small_run =
    Test.make ~name:"sim/30s-replicated-system"
      (Staged.stage (fun () ->
           let params =
             {
               Lsr_workload.Params.default with
               Lsr_workload.Params.num_secondaries = 2;
               clients_per_secondary = 5;
               warmup = 5.;
               duration = 30.;
             }
           in
           Sim_system.run
             (Sim_system.config params Lsr_core.Session.Strong_session ~seed:1)))
  in
  [
    mvcc_commit;
    mvcc_read;
    row_codec;
    propagation_poll;
    replication_pipeline;
    checker_bench;
    sim_engine;
    sim_small_run;
  ]

let run_micro () =
  let open Bechamel in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.75) () in
  let instance = Toolkit.Instance.monotonic_clock in
  let grouped = Test.make_grouped ~name:"micro" ~fmt:"%s/%s" (micro_tests ()) in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let nanos =
          match Analyze.OLS.estimates ols with
          | Some (t :: _) -> t
          | Some [] | None -> nan
        in
        let r2 =
          match Analyze.OLS.r_square ols with Some r -> r | None -> nan
        in
        (name, nanos, r2) :: acc)
      results []
    |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
    |> List.map (fun (name, nanos, r2) ->
           [ name; Printf.sprintf "%.1f" nanos; Printf.sprintf "%.4f" r2 ])
  in
  Lsr_stats.Table_fmt.print ~title:"Microbenchmarks (Bechamel, OLS estimates)"
    ~header:[ "benchmark"; "ns/run"; "r2" ] rows

(* --- Command line ------------------------------------------------------------ *)

open Cmdliner

let quick_arg =
  let doc = "Shorter runs and fewer replications (shape-preserving)." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let seed_arg =
  let doc = "Root random seed for the sweeps." in
  Arg.(value & opt int 20060912 & info [ "seed" ] ~doc)

let csv_arg =
  let doc = "Also write each figure as CSV into $(docv)." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR" ~doc)

let verbose_arg =
  let doc = "Print per-run progress to stderr." in
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc)

let trace_arg =
  let doc =
    "Write a Chrome trace_event JSON file of the simulation's virtual-time \
     spans to $(docv) (load it in Perfetto or chrome://tracing)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Write aggregated counters, gauges and histograms as JSON to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let lineage_arg =
  let doc =
    "Record per-transaction causal lineage (primary commit, propagation, \
     channel faults, refresh) across every run and write it as JSON to \
     $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "lineage" ] ~docv:"FILE" ~doc)

let timeseries_arg =
  let doc =
    "Attach the periodic system monitor to every run (1 virtual-second \
     sampling: per-resource utilization / queue length / depth, refresh \
     backlogs, WAL length, MVCC version counts) and write the deterministic \
     time series to $(docv) ($(b,.csv) extension selects CSV, anything \
     else JSON)."
  in
  Arg.(value & opt (some string) None & info [ "timeseries" ] ~docv:"FILE" ~doc)

let bottleneck_arg =
  let doc =
    "Collect per-resource queueing telemetry from every run, print the \
     bottleneck report of the last run and write one report per run as \
     JSON to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "bottleneck" ] ~docv:"FILE" ~doc)

let watchdog_arg =
  let doc =
    "Attach the online consistency watchdog to every run (weak-SI reads, \
     inversion floors and fence claims checked incrementally, in memory \
     bounded by the active visibility window) and write one deterministic \
     report per run as JSON to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "watchdog" ] ~docv:"FILE" ~doc)

let flight_arg =
  let doc =
    "Attach the bounded flight recorder to every run (the unified event \
     stream absorbed into a fixed-capacity ring; a watchdog alert or \
     checker failure snapshots a postmortem bundle, otherwise the end-of-run \
     window is kept) and write one bundle per run as JSON to $(docv). \
     Inspect bundles with $(b,lsrepl replay)."
  in
  Arg.(value & opt (some string) None & info [ "flight" ] ~docv:"FILE" ~doc)

let lag_report_arg =
  let doc =
    "Print a per-site freshness / propagation-lag table (p50/p95/p99) from \
     the recorded lineage and write it as JSON to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "lag-report" ] ~docv:"FILE" ~doc)

let all_targets =
  [
    "table1"; "fig2"; "fig3"; "fig4"; "fig5"; "fig6"; "fig7"; "fig8";
    "ablate-propagation"; "ablate-applicators"; "ablate-pcsi";
    "ablate-delay"; "micro";
  ]

(* Runnable explicitly but excluded from `all` (extension studies and the
   CI observability smoke run). *)
let extra_targets =
  [
    "ablate-contention"; "fig-staleness"; "fig-utilization"; "fig-fence";
    "fig-plan"; "fig-watchdog"; "fig-flight"; "faults"; "smoke"; "analyze";
    "perf";
  ]

let bench_out_arg =
  let doc =
    "Where the $(b,perf) target writes its machine-readable report \
     (BENCH_10.json schema)."
  in
  Arg.(value & opt string "BENCH_10.json" & info [ "bench-out" ] ~docv:"FILE" ~doc)

let targets_arg =
  let doc =
    "What to regenerate: table1, fig2..fig8, figures (all figures), \
     ablations, ablate-propagation, ablate-applicators, ablate-pcsi, \
     ablate-delay, micro or all (default). Extension studies (excluded \
     from all): ablate-contention, fig-staleness, fig-utilization, \
     fig-fence, fig-plan, fig-watchdog, fig-flight, faults, smoke, \
     analyze, perf."
  in
  Arg.(value & pos_all string [ "all" ] & info [] ~docv:"TARGET" ~doc)

let expand target =
  match target with
  | "all" -> all_targets
  | "figures" -> [ "fig2"; "fig3"; "fig4"; "fig5"; "fig6"; "fig7"; "fig8" ]
  | "ablations" ->
    [ "ablate-propagation"; "ablate-applicators"; "ablate-pcsi"; "ablate-delay" ]
  | t -> [ t ]

(* Write and immediately re-parse an exported JSON file: a smoke-level
   guarantee that what we ship is loadable, at zero dependency cost. *)
let export what write file =
  write ~file;
  match Obs_json.parse (In_channel.with_open_bin file In_channel.input_all) with
  | Ok _ -> Printf.printf "(%s written to %s)\n%!" what file
  | Error e ->
    Printf.eprintf "internal error: %s file %s is invalid JSON: %s\n%!" what
      file e;
    exit 2

let main quick seed csv verbose trace metrics lineage_file lag_report timeseries
    bottleneck watchdog_file flight_file bench_out targets =
  let wanted = List.concat_map expand targets in
  let unknown =
    List.filter
      (fun t -> not (List.mem t all_targets || List.mem t extra_targets))
      wanted
  in
  match unknown with
  | t :: _ -> `Error (false, Printf.sprintf "unknown target %S" t)
  | [] ->
    let obs =
      if trace <> None || metrics <> None then Obs.create () else Obs.null
    in
    let lineage =
      if lineage_file <> None || lag_report <> None then Lineage.create ()
      else Lineage.null
    in
    let monitor =
      if timeseries <> None then Monitor.create ~interval:1.0 ()
      else Monitor.null
    in
    let watchdog = watchdog_file <> None in
    let flight =
      if flight_file <> None then Lsr_obs.Flight.create ()
      else Lsr_obs.Flight.null
    in
    let bottleneck_entries = ref [] in
    let watchdog_entries = ref [] in
    let flight_entries = ref [] in
    let on_outcome tag (cfg : Sim_system.config) outcome =
      if bottleneck <> None then
        bottleneck_entries :=
          {
            Bottleneck.tag;
            report = Bottleneck.analyze cfg.Sim_system.params outcome;
          }
          :: !bottleneck_entries;
      (match outcome.Sim_system.flight_report with
      | Some bundle when flight_file <> None ->
        flight_entries :=
          Obs_json.Obj [ ("tag", Obs_json.Str tag); ("bundle", bundle) ]
          :: !flight_entries
      | Some _ | None -> ());
      match outcome.Sim_system.watchdog_report with
      | Some report when watchdog ->
        watchdog_entries :=
          Obs_json.Obj [ ("tag", Obs_json.Str tag); ("report", report) ]
          :: !watchdog_entries
      | Some _ | None -> ()
    in
    let opts =
      opts ~quick ~seed ~verbose ~obs ~lineage ~monitor ~watchdog ~flight
        ~on_outcome
    in
    Printf.printf "lazy-replication benchmark harness (%s mode, seed %d)\n%!"
      (if quick then "quick" else "paper-scale")
      seed;
    if List.mem "table1" wanted then run_table1 ~quick;
    if List.exists (fun t -> List.mem t [ "fig2"; "fig3"; "fig4" ]) wanted then
      run_fig234 opts ~csv ~wanted;
    if List.exists (fun t -> List.mem t [ "fig5"; "fig6"; "fig7" ]) wanted then
      run_fig567 opts ~csv ~wanted;
    if List.mem "fig8" wanted then run_fig8 opts ~csv;
    if List.mem "fig-staleness" wanted then
      emit ~csv (Figures.fig_staleness opts);
    if List.mem "fig-utilization" wanted then
      emit ~csv (Figures.fig_utilization opts);
    if List.mem "fig-fence" wanted then emit ~csv (Figures.fig_fence opts);
    if List.mem "fig-plan" wanted then emit ~csv (Figures.fig_plan opts);
    if List.mem "fig-watchdog" wanted then emit ~csv (Figures.fig_watchdog opts);
    if List.mem "fig-flight" wanted then emit ~csv (Figures.fig_flight opts);
    run_ablations opts ~csv ~wanted;
    if List.mem "faults" wanted then
      run_faults ~quick ~seed ~obs ~lineage ~monitor ~watchdog ~flight
        ~on_outcome;
    if List.mem "smoke" wanted then
      run_smoke ~seed ~obs ~lineage ~monitor ~watchdog ~flight ~on_outcome;
    if List.mem "analyze" wanted then run_analysis ~csv;
    if List.mem "perf" wanted then run_perf ~quick ~seed ~verbose ~bench_out;
    if List.mem "micro" wanted then run_micro ();
    Option.iter
      (fun file ->
        let json =
          Obs_json.sort_keys
            (Obs_json.Obj [ ("runs", Obs_json.Arr (List.rev !watchdog_entries)) ])
        in
        export "watchdog"
          (fun ~file ->
            let oc = open_out file in
            output_string oc (Obs_json.to_string json);
            output_char oc '\n';
            close_out oc)
          file)
      watchdog_file;
    Option.iter
      (fun file ->
        let json =
          Obs_json.sort_keys
            (Obs_json.Obj [ ("runs", Obs_json.Arr (List.rev !flight_entries)) ])
        in
        export "flight"
          (fun ~file ->
            let oc = open_out file in
            output_string oc (Obs_json.to_string json);
            output_char oc '\n';
            close_out oc)
          file)
      flight_file;
    Option.iter (export "trace" (Obs.write_trace obs)) trace;
    Option.iter (export "metrics" (Obs.write_metrics obs)) metrics;
    Option.iter (export "lineage" (Lineage.write lineage)) lineage_file;
    Option.iter
      (fun file ->
        let rows = Lag_report.of_lineage lineage in
        Printf.printf
          "\n== Per-site freshness / propagation lag (virtual seconds) ==\n\
           %s\n\
           %!"
          (Lag_report.render rows);
        export "lag report" (Lag_report.write rows) file)
      lag_report;
    Option.iter
      (fun file ->
        let series = Monitor.series monitor in
        if Filename.check_suffix file ".csv" then begin
          Lsr_obs.Timeseries.write_csv series ~file;
          Printf.printf "(timeseries written to %s)\n%!" file
        end
        else export "timeseries" (Lsr_obs.Timeseries.write_json series) file)
      timeseries;
    Option.iter
      (fun file ->
        let entries = List.rev !bottleneck_entries in
        (match !bottleneck_entries with
        | [] -> ()
        | last :: _ ->
          Printf.printf "\n== Bottleneck report ==\n%s%!"
            (Bottleneck.render ~tag:last.Bottleneck.tag last.Bottleneck.report));
        export "bottleneck" (Bottleneck.write_sweep entries) file)
      bottleneck;
    `Ok ()

let cmd =
  let doc =
    "regenerate the evaluation of 'Lazy Database Replication with Snapshot \
     Isolation' (VLDB 2006)"
  in
  let info = Cmd.info "lsr-bench" ~doc in
  Cmd.v info
    Term.(
      ret
        (const main $ quick_arg $ seed_arg $ csv_arg $ verbose_arg $ trace_arg
       $ metrics_arg $ lineage_arg $ lag_report_arg $ timeseries_arg
       $ bottleneck_arg $ watchdog_arg $ flight_arg $ bench_out_arg
       $ targets_arg))

let () = exit (Cmd.eval cmd)
